"""Unit + gradient tests for the primitive tensor operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.tensor as rt
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


def make(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmetic:
    def test_add_values(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).numpy(), a + b)

    def test_scalar_promotes(self):
        out = Tensor([1.0, 2.0]) * 3 + 1
        assert np.allclose(out.numpy(), [4.0, 7.0])

    def test_radd_rmul_rsub_rdiv(self):
        t = Tensor([2.0, 4.0])
        assert np.allclose((1 + t).numpy(), [3, 5])
        assert np.allclose((2 * t).numpy(), [4, 8])
        assert np.allclose((10 - t).numpy(), [8, 6])
        assert np.allclose((8 / t).numpy(), [4, 2])

    @pytest.mark.usefixtures("float64")
    def test_arithmetic_grads(self, rng):
        a, b = make(rng, 3, 4), make(rng, 3, 4)
        gradcheck(lambda x, y: x * y + x / (y.abs() + 1.0) - y, [a, b])

    @pytest.mark.usefixtures("float64")
    def test_broadcast_grads(self, rng):
        a, b = make(rng, 3, 4), make(rng, 4)
        gradcheck(lambda x, y: x * y + y, [a, b])
        c = make(rng, 3, 1)
        gradcheck(lambda x, y: x + y, [a, c])

    @pytest.mark.usefixtures("float64")
    def test_pow_grad(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3,))) + 0.5, requires_grad=True)
        gradcheck(lambda x: x ** 3, [a])
        gradcheck(lambda x: x ** 0.5, [a], atol=5e-4)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestMatmul:
    @pytest.mark.usefixtures("float64")
    @pytest.mark.parametrize("sa,sb", [
        ((3, 4), (4, 5)),
        ((2, 3, 4), (2, 4, 5)),
        ((2, 3, 4), (4, 5)),       # broadcast b
        ((4,), (4, 5)),            # vector @ matrix
        ((3, 4), (4,)),            # matrix @ vector
        ((4,), (4,)),              # dot product
    ])
    def test_matmul_grads(self, rng, sa, sb):
        a, b = make(rng, *sa), make(rng, *sb)
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matmul_values(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b, atol=1e-5)


class TestElementwise:
    @pytest.mark.usefixtures("float64")
    def test_unary_grads(self, rng):
        a = make(rng, 3, 4)
        gradcheck(lambda x: (x * 0.3).exp(), [a])
        gradcheck(lambda x: x.tanh(), [a])
        gradcheck(lambda x: x.sigmoid(), [a])
        gradcheck(lambda x: x.relu() + 0.1 * x, [a], atol=5e-3)
        b = Tensor(np.abs(rng.normal(size=(3,))) + 0.5, requires_grad=True)
        gradcheck(lambda x: x.log(), [b])
        gradcheck(lambda x: x.sqrt(), [b])

    def test_sigmoid_stable_at_extremes(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid().numpy()
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.usefixtures("float64")
    def test_clip_grad_zero_outside(self, rng):
        a = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        out = a.clip(-1.0, 1.0)
        out.sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductions:
    @pytest.mark.usefixtures("float64")
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True),
                                               ((0, 2), False)])
    def test_sum_mean_grads(self, rng, axis, keepdims):
        a = make(rng, 2, 3, 4)
        gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])
        gradcheck(lambda x: x.mean(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.usefixtures("float64")
    def test_max_grad_no_ties(self, rng):
        a = make(rng, 3, 5)
        gradcheck(lambda x: x.max(axis=1), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_min_matches_numpy(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.allclose(Tensor(a).min(axis=1).numpy(), a.min(axis=1), atol=1e-6)

    def test_var(self, rng):
        a = rng.normal(size=(5, 7))
        assert np.allclose(Tensor(a).var(axis=1).numpy(), a.var(axis=1), atol=1e-5)

    def test_argmax_passthrough(self, rng):
        a = rng.normal(size=(3, 4))
        assert np.array_equal(Tensor(a).argmax(axis=1), a.argmax(axis=1))


class TestShapes:
    @pytest.mark.usefixtures("float64")
    def test_reshape_transpose_grads(self, rng):
        a = make(rng, 2, 3, 4)
        gradcheck(lambda x: x.reshape(6, 4), [a])
        gradcheck(lambda x: x.transpose(2, 0, 1), [a])
        gradcheck(lambda x: x.swapaxes(1, 2), [a])
        gradcheck(lambda x: x.expand_dims(1).squeeze(1), [a])

    @pytest.mark.usefixtures("float64")
    def test_getitem_take_grads(self, rng):
        a = make(rng, 5, 3)
        gradcheck(lambda x: x[np.array([0, 2, 2, 4])], [a])
        gradcheck(lambda x: x.take(np.array([[0, 1], [1, 4]]), axis=0), [a])
        gradcheck(lambda x: x[:, 1], [a])

    def test_getitem_repeated_indices_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        a[np.array([1, 1, 1])].sum().backward()
        assert np.allclose(a.grad, [[0, 0], [3, 3], [0, 0]])

    @pytest.mark.usefixtures("float64")
    def test_concatenate_stack_grads(self, rng):
        a, b = make(rng, 2, 3), make(rng, 2, 3)
        gradcheck(lambda x, y: rt.concatenate([x, y], axis=0), [a, b])
        gradcheck(lambda x, y: rt.concatenate([x, y], axis=1), [a, b])
        gradcheck(lambda x, y: rt.stack([x, y], axis=1), [a, b])

    @pytest.mark.usefixtures("float64")
    def test_where_maximum_minimum_grads(self, rng):
        a, b = make(rng, 3, 4), make(rng, 3, 4)
        cond = rng.random((3, 4)) > 0.5
        gradcheck(lambda x, y: rt.where(cond, x, y), [a, b])
        gradcheck(lambda x, y: rt.maximum(x, y), [a, b])
        gradcheck(lambda x, y: rt.minimum(x, y), [a, b])

    @pytest.mark.usefixtures("float64")
    def test_masked_fill_grad(self, rng):
        a = make(rng, 3, 4)
        mask = rng.random((3, 4)) > 0.5
        gradcheck(lambda x: x.masked_fill(mask, -3.0), [a])
        out = a.masked_fill(mask, 7.0)
        assert np.allclose(out.numpy()[mask], 7.0)


class TestUnbroadcast:
    @given(st.sampled_from([(3, 4), (1, 4), (3, 1), (1, 1), (4,), (1,)]))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_restores_shape(self, shape):
        grad = np.ones((3, 4))
        reduced = rt.unbroadcast(grad, shape)
        assert reduced.shape == shape
        # Total mass is preserved by summation.
        assert reduced.sum() == pytest.approx(grad.sum())

    def test_factories(self):
        assert rt.zeros(2, 3).shape == (2, 3)
        assert rt.ones((2, 3)).shape == (2, 3)
        assert np.array_equal(rt.arange(5).numpy(), np.arange(5))
        t = Tensor(np.ones((2, 2)))
        assert rt.zeros_like(t).shape == (2, 2)
        assert rt.ones_like(t).numpy().sum() == 4
