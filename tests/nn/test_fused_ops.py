"""Fused single-node ops: fp64 gradchecks and fused-vs-composed equivalence.

Every fused kernel (masked softmax, layer norm, softmax cross-entropy, GELU,
dropout) must produce the same forward values and the same gradients as the
composed multi-node chain it replaced, and its hand-derived backward must
match central finite differences in float64.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.gradcheck import gradcheck


class _FixedRng:
    """Stands in for a Generator; returns one fixed uniform draw repeatedly.

    Lets the stochastic dropout kernels be compared across paths (same mask)
    and finite-difference checked (same mask on every re-evaluation).
    """

    def __init__(self, values: np.ndarray):
        self._values = np.asarray(values, dtype=np.float64)

    def random(self, shape, dtype=np.float64):
        assert tuple(shape) == self._values.shape
        return self._values.astype(dtype)


def _fused_and_composed(run):
    with F.fused_ops(True):
        fused = run()
    with F.fused_ops(False):
        composed = run()
    return fused, composed


class TestMaskedSoftmax:
    def test_matches_composed(self, rng):
        data = rng.standard_normal((4, 3, 6)).astype(np.float32)
        mask = rng.random((4, 1, 6)) < 0.3
        mask[0, 0, :] = True  # one fully-masked attention row

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = F.masked_softmax(x, mask, axis=-1)
            (out * out).sum().backward()
            return out.data.copy(), x.grad.copy()

        (f_out, f_grad), (c_out, c_grad) = _fused_and_composed(run)
        np.testing.assert_allclose(f_out, c_out, atol=1e-6)
        np.testing.assert_allclose(f_grad, c_grad, atol=1e-6)

    def test_none_mask_is_plain_softmax(self, rng):
        x = Tensor(rng.standard_normal((2, 5)))
        out = F.masked_softmax(x, None)
        np.testing.assert_allclose(out.data, F.softmax(x).data)

    def test_blocked_positions_get_no_weight(self, rng):
        mask = np.array([[False, True, False, True]])
        out = F.masked_softmax(Tensor(rng.standard_normal((3, 4))), mask)
        assert np.all(out.data[:, 1] < 1e-6)
        assert np.all(out.data[:, 3] < 1e-6)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_gradcheck(self, float64, rng):
        mask = np.array([[False, True, False, False],
                         [False, False, False, True]])
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        weights = Tensor(rng.standard_normal((2, 4)))
        assert gradcheck(lambda t: F.masked_softmax(t, mask) * weights, [x])


class TestLayerNorm:
    def test_matches_composed(self, rng):
        data = rng.standard_normal((5, 7, 8)).astype(np.float32)
        gamma_data = rng.standard_normal(8).astype(np.float32)
        beta_data = rng.standard_normal(8).astype(np.float32)

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            gamma = Tensor(gamma_data.copy(), requires_grad=True)
            beta = Tensor(beta_data.copy(), requires_grad=True)
            out = F.layer_norm(x, gamma, beta)
            (out * out).sum().backward()
            return (out.data.copy(), x.grad.copy(), gamma.grad.copy(),
                    beta.grad.copy())

        fused, composed = _fused_and_composed(run)
        for f, c in zip(fused, composed):
            np.testing.assert_allclose(f, c, atol=2e-5)

    def test_gradcheck_all_inputs(self, float64, rng):
        x = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
        gamma = Tensor(rng.standard_normal(6), requires_grad=True)
        beta = Tensor(rng.standard_normal(6), requires_grad=True)
        weights = Tensor(rng.standard_normal((3, 6)))
        assert gradcheck(lambda a, g, b: F.layer_norm(a, g, b) * weights,
                         [x, gamma, beta])

    def test_normalizes_last_axis(self, rng):
        x = Tensor(rng.standard_normal((10, 16)) * 3.0 + 2.0)
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestSoftmaxCrossEntropy:
    @pytest.mark.parametrize("ignore_index,label_smoothing", [
        (None, 0.0), (-1, 0.0), (None, 0.1), (-1, 0.2),
    ])
    def test_matches_composed(self, rng, ignore_index, label_smoothing):
        data = rng.standard_normal((6, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=6)
        if ignore_index is not None:
            targets[1] = ignore_index
            targets[4] = ignore_index

        def run():
            logits = Tensor(data.copy(), requires_grad=True)
            loss = F.softmax_cross_entropy(logits, targets,
                                           ignore_index=ignore_index,
                                           label_smoothing=label_smoothing)
            loss.backward()
            return float(loss.data), logits.grad.copy()

        (f_loss, f_grad), (c_loss, c_grad) = _fused_and_composed(run)
        assert abs(f_loss - c_loss) < 1e-6
        np.testing.assert_allclose(f_grad, c_grad, atol=1e-6)

    @pytest.mark.parametrize("ignore_index,label_smoothing", [
        (None, 0.0), (-1, 0.0), (None, 0.1), (-1, 0.2),
    ])
    def test_gradcheck(self, float64, rng, ignore_index, label_smoothing):
        logits = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        targets = rng.integers(0, 4, size=5)
        if ignore_index is not None:
            targets[2] = ignore_index
        assert gradcheck(
            lambda t: F.softmax_cross_entropy(t, targets,
                                              ignore_index=ignore_index,
                                              label_smoothing=label_smoothing),
            [logits])

    def test_all_ignored_raises(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)))
        with pytest.raises(ValueError, match="ignored"):
            F.softmax_cross_entropy(logits, np.full(3, -1), ignore_index=-1)

    def test_known_value(self):
        # Uniform logits over C classes → loss = log C, independent of path.
        logits = Tensor(np.zeros((2, 4)))
        loss = F.softmax_cross_entropy(logits, np.array([0, 3]))
        np.testing.assert_allclose(float(loss.data), np.log(4.0), atol=1e-6)


class TestGelu:
    def test_matches_composed(self, rng):
        data = (rng.standard_normal((4, 9)) * 2.0).astype(np.float32)

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = F.gelu(x)
            (out * out).sum().backward()
            return out.data.copy(), x.grad.copy()

        (f_out, f_grad), (c_out, c_grad) = _fused_and_composed(run)
        np.testing.assert_allclose(f_out, c_out, atol=1e-6)
        np.testing.assert_allclose(f_grad, c_grad, atol=1e-5)

    def test_gradcheck(self, float64, rng):
        x = Tensor(rng.standard_normal((3, 5)) * 2.0, requires_grad=True)
        assert gradcheck(F.gelu, [x])


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_identity_when_p_zero(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        assert F.dropout(x, 0.0, training=True, rng=rng) is x

    def test_matches_composed_with_same_mask(self, rng):
        data = rng.standard_normal((6, 5)).astype(np.float32)
        uniforms = rng.random((6, 5))

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = F.dropout(x, 0.4, training=True, rng=_FixedRng(uniforms))
            (out * out).sum().backward()
            return out.data.copy(), x.grad.copy()

        (f_out, f_grad), (c_out, c_grad) = _fused_and_composed(run)
        np.testing.assert_allclose(f_out, c_out, atol=1e-6)
        np.testing.assert_allclose(f_grad, c_grad, atol=1e-6)

    def test_gradcheck(self, float64, rng):
        uniforms = rng.random((4, 3))
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        assert gradcheck(
            lambda t: F.dropout(t, 0.3, training=True, rng=_FixedRng(uniforms)),
            [x])

    def test_kept_positions_scaled(self, rng):
        p = 0.25
        x = Tensor(np.ones((8, 8), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, p, training=True, rng=rng)
        out.sum().backward()
        kept = out.data != 0
        np.testing.assert_allclose(out.data[kept], 1.0 / (1.0 - p), atol=1e-6)
        np.testing.assert_allclose(x.grad[kept], 1.0 / (1.0 - p), atol=1e-6)
        np.testing.assert_allclose(x.grad[~kept], 0.0, atol=1e-6)


class TestToggles:
    def test_fused_ops_context_restores(self):
        before = F.fused_ops_enabled()
        with F.fused_ops(False):
            assert not F.fused_ops_enabled()
        assert F.fused_ops_enabled() == before
