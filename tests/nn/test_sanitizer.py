"""Autograd sanitizer: version counters, NaN-origin tracing, overhead guard.

The acceptance contract from the static-analysis issue:

* an in-place mutation of a graph-participating array that *today* silently
  corrupts gradients raises a clear error naming the tensor and versions;
* a gradcheck-based demonstration of the corruption the sanitizer prevents;
* the disabled sanitizer costs <2% of a training step (same budget style as
  ``tests/obs/test_overhead.py``).
"""

import time

import numpy as np
import pytest

from repro.nn import (GradSanitizer, InplaceMutationError, Linear,
                      NonFiniteOriginError, disable_sanitizer,
                      enable_sanitizer, get_sanitizer, sanitized)
from repro.nn.tensor import Tensor
from repro.utils import seeded_rng
from repro.utils.gradcheck import gradcheck, numerical_gradient

MAX_OVERHEAD_FRACTION = 0.02


class TestMutationDetection:
    def test_mutation_between_forward_and_backward_raises(self):
        with sanitized() as sanitizer:
            w = Tensor(seeded_rng(0).normal(size=(4, 3)), requires_grad=True)
            loss = (w * 2.0).sum()
            w.data[0, 0] += 1.0  # in-place mutation before backward
            with pytest.raises(InplaceMutationError) as excinfo:
                loss.backward()
        message = str(excinfo.value)
        assert "version" in message
        assert "shape=(4, 3)" in message  # names the offending tensor
        assert sanitizer.checks_run > 0

    def test_error_reports_saved_and_current_versions(self):
        with sanitized():
            w = Tensor(seeded_rng(1).normal(size=(3,)), requires_grad=True)
            loss = (w * w).sum()
            w.data[:] = 0.0
            with pytest.raises(InplaceMutationError,
                               match=r"at version 1; expected version 0"):
                loss.backward()

    def test_mutation_of_interior_output_detected(self):
        with sanitized():
            w = Tensor(seeded_rng(2).normal(size=(5,)), requires_grad=True)
            hidden = w.exp()          # backward reads hidden.data
            loss = hidden.sum()
            hidden.data *= 3.0
            with pytest.raises(InplaceMutationError):
                loss.backward()

    def test_clean_forward_backward_passes(self):
        with sanitized() as sanitizer:
            rng = seeded_rng(3)
            layer = Linear(6, 4, rng)
            x = Tensor(rng.normal(size=(8, 6)))
            layer(x).sum().backward()
            assert layer.weight.grad is not None
            assert sanitizer.nodes_seen > 0

    def test_optimizer_style_update_after_backward_is_fine(self):
        # Mutating a leaf AFTER backward (the optimizer pattern) must not
        # trip the next graph's checks: the version bump is observed at the
        # next save, before anything stale depends on it.
        with sanitized():
            w = Tensor(seeded_rng(4).normal(size=(3,)), requires_grad=True)
            (w * 2.0).sum().backward()
            w.data -= 0.1 * w.grad
            w.grad = None
            (w * 3.0).sum().backward()
            np.testing.assert_allclose(w.grad, 3.0)

    def test_gradcheck_demonstrates_the_prevented_corruption(self, float64):
        data = seeded_rng(5).normal(size=(4, 3))
        true_grad = 2.0 * data  # d/dw sum(w*w)

        # Silent corruption today (sanitizer off): backward consumes the
        # mutated array and produces a *wrong* gradient without any error.
        w = Tensor(data.copy(), requires_grad=True)
        loss = (w * w).sum()
        w.data *= 1.5
        loss.backward()
        assert not np.allclose(w.grad, true_grad), \
            "mutation should corrupt the analytic gradient"
        numeric = numerical_gradient(lambda t: t * t,
                                     [Tensor(data.copy(), requires_grad=True)], 0)
        assert not np.allclose(w.grad, numeric)

        # Same sequence with the sanitizer: corruption becomes an error.
        with sanitized():
            w = Tensor(data.copy(), requires_grad=True)
            loss = (w * w).sum()
            w.data *= 1.5
            with pytest.raises(InplaceMutationError):
                loss.backward()

        # And an unmutated graph still gradchecks clean under the sanitizer.
        with sanitized():
            assert gradcheck(lambda t: t * t,
                             [Tensor(data.copy(), requires_grad=True)])


class TestNonFiniteOrigin:
    def test_names_the_op_that_first_produced_nonfinite(self):
        with sanitized(track_nonfinite=True):
            x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
            with np.errstate(divide="ignore"):
                with pytest.raises(NonFiniteOriginError, match="op 'log'"):
                    x.log()

    def test_nonfinite_leaf_input_is_named_as_the_origin(self):
        with sanitized(track_nonfinite=True):
            x = Tensor(np.array([np.nan, 1.0]), requires_grad=True)
            with pytest.raises(NonFiniteOriginError, match="entered the graph"):
                x * 2.0

    def test_finite_graph_is_untouched(self):
        with sanitized(track_nonfinite=True):
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            x.log().sum().backward()
            assert np.all(np.isfinite(x.grad))

    def test_disabled_by_default_in_mutation_mode(self):
        with sanitized():  # mutation checks only
            x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
            with np.errstate(divide="ignore"):
                x.log()  # no raise


class TestLifecycle:
    def test_disabled_by_default(self):
        assert get_sanitizer() is None

    def test_enable_disable_roundtrip(self):
        sanitizer = enable_sanitizer()
        try:
            assert get_sanitizer() is sanitizer
        finally:
            disable_sanitizer()
        assert get_sanitizer() is None

    def test_context_manager_restores_previous(self):
        outer = enable_sanitizer()
        try:
            with sanitized() as inner:
                assert get_sanitizer() is inner
            assert get_sanitizer() is outer
        finally:
            disable_sanitizer()

    def test_requires_at_least_one_mode(self):
        with pytest.raises(ValueError):
            GradSanitizer(check_mutations=False, track_nonfinite=False)


def _count_graph_nodes(root: Tensor) -> int:
    seen, stack, count = set(), [root], 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node._backward is not None:
            count += 1
        stack.extend(node._prev)
    return count


class TestDisabledOverhead:
    """Budget check mirroring ``tests/obs/test_overhead.py``.

    Disabled, the sanitizer adds one global ``is None`` read per node at
    creation and one per node in the backward sweep.  Bound that cost by the
    measured price of ``get_sanitizer()`` (a strict overestimate of the
    inlined check: it pays a call on top of the global read) times twice the
    real node count of a step, and assert it stays under 2% of the step.
    """

    def test_disabled_check_budget_under_two_percent(self):
        assert get_sanitizer() is None
        rng = seeded_rng(7)
        layers = [Linear(32, 32, rng) for _ in range(3)]
        x = Tensor(rng.normal(size=(64, 32)))

        def step() -> Tensor:
            out = x
            for layer in layers:
                out = layer(out).relu()
            loss = out.sum()
            loss.backward()
            for layer in layers:
                layer.weight.grad = None
                if layer.bias is not None:
                    layer.bias.grad = None
            return loss

        loss = x
        for layer in layers:
            loss = layer(loss).relu()
        nodes = _count_graph_nodes(loss.sum())

        step()  # warm up
        iterations = 20
        start = time.perf_counter()
        for _ in range(iterations):
            step()
        step_seconds = (time.perf_counter() - start) / iterations

        probe_iterations = 20_000
        start = time.perf_counter()
        for _ in range(probe_iterations):
            get_sanitizer()
        per_check = (time.perf_counter() - start) / probe_iterations

        budget = 2 * nodes * per_check
        assert budget < MAX_OVERHEAD_FRACTION * step_seconds, (
            f"disabled sanitizer budget {budget * 1e6:.2f}µs "
            f"({nodes} nodes) exceeds 2% of a {step_seconds * 1e3:.2f}ms step")
