"""Tests for scaled dot-product attention, MHA and attention pooling."""

import numpy as np
import pytest

from repro.nn import (AdditiveAttentionPool, MultiHeadAttention, make_causal_mask,
                      make_padding_mask, scaled_dot_product_attention)
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestSDPA:
    def test_weights_sum_to_one(self, rng):
        q = Tensor(rng.normal(size=(2, 4, 8)))
        out, weights = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 4, 8)
        assert np.allclose(weights.numpy().sum(axis=-1), 1.0, atol=1e-5)

    def test_mask_blocks_positions(self, rng):
        q = Tensor(rng.normal(size=(1, 3, 4)))
        mask = np.zeros((1, 3, 3), dtype=bool)
        mask[:, :, 2] = True  # nobody may attend to position 2
        _, weights = scaled_dot_product_attention(q, q, q, mask=mask)
        assert np.allclose(weights.numpy()[:, :, 2], 0.0, atol=1e-6)

    def test_uniform_attention_for_identical_keys(self):
        q = Tensor(np.ones((1, 2, 4)))
        _, weights = scaled_dot_product_attention(q, q, q)
        assert np.allclose(weights.numpy(), 0.5, atol=1e-6)


class TestMasks:
    def test_causal_mask_shape_and_content(self):
        mask = make_causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        assert not mask[0, 0, 3].any()          # last position sees everything
        assert mask[0, 0, 0, 1:].all()          # first position sees only itself

    def test_padding_mask(self):
        valid = np.array([[True, True, False]])
        mask = make_padding_mask(valid)
        assert mask.shape == (1, 1, 1, 3)
        assert mask[0, 0, 0].tolist() == [False, False, True]


class TestMultiHeadAttention:
    def test_shapes(self, rng):
        mha = MultiHeadAttention(16, 4, rng)
        x = Tensor(rng.normal(size=(3, 5, 16)))
        assert mha(x).shape == (3, 5, 16)

    def test_cross_attention_shapes(self, rng):
        mha = MultiHeadAttention(16, 4, rng)
        q = Tensor(rng.normal(size=(3, 2, 16)))
        kv = Tensor(rng.normal(size=(3, 7, 16)))
        assert mha(q, kv).shape == (3, 2, 16)

    def test_indivisible_heads_raise(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        mha.eval()
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        gradcheck(lambda a: mha(a), [x], atol=5e-4)

    def test_causal_mask_respected(self, rng):
        """Changing a future position must not change earlier outputs."""
        mha = MultiHeadAttention(8, 2, rng)
        mha.eval()
        x = rng.normal(size=(1, 5, 8))
        mask = make_causal_mask(5)
        out1 = mha(Tensor(x), mask=mask).numpy()
        x2 = x.copy()
        x2[0, 4] += 10.0  # perturb the last position
        out2 = mha(Tensor(x2), mask=mask).numpy()
        assert np.allclose(out1[0, :4], out2[0, :4], atol=1e-5)
        assert not np.allclose(out1[0, 4], out2[0, 4], atol=1e-3)


class TestAdditiveAttentionPool:
    def test_shape_and_mask(self, rng):
        pool = AdditiveAttentionPool(8, 16, rng)
        x = Tensor(rng.normal(size=(3, 6, 8)))
        out = pool(x)
        assert out.shape == (3, 8)

    def test_masked_positions_ignored(self, rng):
        pool = AdditiveAttentionPool(4, 8, rng)
        x = rng.normal(size=(1, 3, 4))
        valid = np.array([[True, True, False]])
        out1 = pool(Tensor(x), valid).numpy()
        x2 = x.copy()
        x2[0, 2] += 100.0  # perturb an invalid position
        out2 = pool(Tensor(x2), valid).numpy()
        assert np.allclose(out1, out2, atol=1e-5)
