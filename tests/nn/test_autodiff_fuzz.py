"""Property-based fuzzing of the autodiff engine.

Hypothesis builds random expression trees from a pool of differentiable ops
and checks the analytic gradient against central differences.  This is the
broadest safety net for the engine: any op whose backward drifts from its
forward breaks here, including through compositions unit tests don't cover.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.nn.functional as F
from repro.nn.tensor import Tensor, get_default_dtype, maximum, set_default_dtype
from repro.utils import gradcheck

# Unary ops safe on arbitrary finite inputs (scaled to avoid overflow).
UNARY_OPS = [
    ("tanh", lambda t: t.tanh()),
    ("sigmoid", lambda t: t.sigmoid()),
    ("exp", lambda t: (t * 0.3).exp()),
    ("softmax", lambda t: F.softmax(t, axis=-1)),
    ("log_softmax", lambda t: F.log_softmax(t, axis=-1)),
    ("gelu", lambda t: F.gelu(t)),
    ("square", lambda t: t * t),
    ("neg", lambda t: -t),
    ("scale", lambda t: t * 1.7 + 0.3),
    ("mean_keep", lambda t: t.mean(axis=-1, keepdims=True) + t),
    ("normalize", lambda t: F.l2_normalize(t, axis=-1)),
    ("transpose2", lambda t: t.transpose(1, 0).transpose(1, 0)),
]

# Binary ops combining two same-shape tensors.
BINARY_OPS = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("div", lambda a, b: a / (b * b + 1.0)),
    ("matmul", lambda a, b: a @ b.transpose(1, 0)),
    ("max", lambda a, b: maximum(a, b + 0.001)),
]


@pytest.fixture(autouse=True)
def _float64():
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


@given(
    seed=st.integers(0, 10_000),
    unary_indices=st.lists(st.integers(0, len(UNARY_OPS) - 1), min_size=1, max_size=4),
    binary_index=st.integers(0, len(BINARY_OPS) - 1),
)
@settings(max_examples=30, deadline=None)
def test_random_expression_gradients(seed, unary_indices, binary_index):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)

    def expression(x, y):
        _, combine = BINARY_OPS[binary_index]
        out = combine(x, y)
        for index in unary_indices:
            _, op = UNARY_OPS[index]
            out = op(out)
        return out.sum() if out.ndim else out

    # Stacked unaries (square∘square∘exp…) can saturate to ~1e11, where the
    # central-difference probe underflows to zero while the analytic gradient
    # is fine — a numerical artifact, not an autodiff bug.  Only check
    # expressions whose forward value stays in a well-conditioned range.
    with_grad = expression(a, b)
    value = np.asarray(with_grad.data)
    assume(np.isfinite(value).all() and np.abs(value).max() < 1e4)

    gradcheck(expression, [a, b], atol=5e-4, rtol=5e-3)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_shared_subexpression_gradients(seed):
    """Diamond-shaped graphs: one tensor feeding several consumers."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(3, 3)), requires_grad=True)

    def expression(t):
        shared = t.tanh()
        left = shared * shared
        right = F.softmax(shared, axis=1)
        return (left + right).sum() + shared.mean()

    gradcheck(expression, [x], atol=5e-4)


@given(seed=st.integers(0, 10_000), length=st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_indexing_chain_gradients(seed, length):
    """Gather → compute → reduce pipelines (the embedding-style pattern)."""
    rng = np.random.default_rng(seed)
    table = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
    indices = rng.integers(0, 8, size=(length,))

    def expression(t):
        rows = t.take(indices, axis=0)
        return (rows * rows).sum(axis=1).tanh()

    gradcheck(expression, [table], atol=5e-4)
