"""Memory-behavior regression tests for the autodiff engine.

The original implementation retained every intermediate gradient and the
whole graph until Python GC broke the tensor↔closure cycles, which drove
multi-GB peaks on real training loops (and one OOM-killed benchmark run).
These tests pin the fixed semantics: backward dismantles the graph and frees
non-leaf gradients immediately.
"""

import gc
import weakref

import numpy as np

from repro.nn import Linear
from repro.nn.tensor import Tensor


class TestGraphDismantling:
    def test_intermediate_grads_freed(self):
        x = Tensor(np.ones(4), requires_grad=True)
        middle = x * 2.0
        out = (middle * middle).sum()
        out.backward()
        assert x.grad is not None            # leaf keeps its gradient
        assert middle.grad is None           # interior node's grad is freed
        assert middle._backward is None      # closure dropped
        assert middle._prev == ()            # parents released

    def test_graph_memory_released_without_gc(self):
        """Interior tensors must become collectable via refcounting alone."""
        gc.disable()
        try:
            x = Tensor(np.ones(8), requires_grad=True)
            middle = x * 3.0
            ref = weakref.ref(middle)
            out = middle.sum()
            out.backward()
            del middle, out
            # With the closure cycle broken in backward(), refcounting alone
            # must reclaim the interior tensor — no cycle collector needed.
            assert ref() is None
        finally:
            gc.enable()

    def test_leaf_grads_survive_multiple_graphs(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, 5.0)

    def test_parameters_keep_grads_through_layers(self, rng):
        layer = Linear(4, 2, rng)
        out = layer(Tensor(rng.normal(size=(3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_peak_allocations_bounded_over_steps(self, rng):
        """Repeated forward/backward must not accumulate live ndarray count."""
        layer = Linear(32, 32, rng)
        x = Tensor(rng.normal(size=(64, 32)))

        def live_tensors() -> int:
            return sum(1 for obj in gc.get_objects() if isinstance(obj, Tensor))

        for _ in range(3):  # warm up allocator and imports
            layer(x).sum().backward()
            layer.zero_grad()
        gc.collect()
        baseline = live_tensors()
        for _ in range(20):
            layer(x).sum().backward()
            layer.zero_grad()
        gc.collect()
        assert live_tensors() <= baseline + 5
