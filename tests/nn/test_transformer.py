"""Tests for the transformer encoder stack."""

import numpy as np
import pytest

from repro.nn import TransformerEncoder, TransformerEncoderLayer
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestEncoderLayer:
    def test_shape_preserved(self, rng):
        layer = TransformerEncoderLayer(16, 2, 32, rng)
        x = Tensor(rng.normal(size=(3, 5, 16)))
        assert layer(x).shape == (3, 5, 16)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        layer.eval()
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        gradcheck(lambda a: layer(a), [x], atol=1e-3, rtol=5e-3)


class TestEncoder:
    def test_causality(self, rng):
        """Perturbing position t must leave outputs at positions < t unchanged."""
        encoder = TransformerEncoder(8, 2, 16, 2, rng, causal=True)
        encoder.eval()
        x = rng.normal(size=(1, 6, 8))
        out1 = encoder(Tensor(x)).numpy()
        x2 = x.copy()
        # Perturb a single feature: a uniform shift would be LayerNorm-invariant.
        x2[0, 3, 0] += 5.0
        out2 = encoder(Tensor(x2)).numpy()
        assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-5)
        assert not np.allclose(out1[0, 3:], out2[0, 3:], atol=1e-3)

    def test_bidirectional_sees_future(self, rng):
        encoder = TransformerEncoder(8, 2, 16, 1, rng, causal=False)
        encoder.eval()
        x = rng.normal(size=(1, 4, 8))
        out1 = encoder(Tensor(x)).numpy()
        x2 = x.copy()
        x2[0, 3, 0] += 5.0
        out2 = encoder(Tensor(x2)).numpy()
        assert not np.allclose(out1[0, 0], out2[0, 0], atol=1e-4)

    def test_padding_mask_isolates_rows(self, rng):
        """A padded position's content must not affect valid positions."""
        encoder = TransformerEncoder(8, 2, 16, 1, rng, causal=False)
        encoder.eval()
        x = rng.normal(size=(1, 4, 8))
        valid = np.array([[False, True, True, True]])
        out1 = encoder(Tensor(x), valid).numpy()
        x2 = x.copy()
        x2[0, 0] += 100.0
        out2 = encoder(Tensor(x2), valid).numpy()
        assert np.allclose(out1[0, 1:], out2[0, 1:], atol=1e-4)

    def test_build_mask_combinations(self, rng):
        encoder = TransformerEncoder(8, 2, 16, 1, rng, causal=True)
        valid = np.array([[True, False]])
        mask = encoder.build_mask(valid, 2)
        assert mask.shape == (1, 1, 2, 2)
        no_pad = encoder.build_mask(None, 3)
        assert no_pad.shape == (1, 1, 3, 3)
        encoder_bi = TransformerEncoder(8, 2, 16, 1, rng, causal=False)
        assert encoder_bi.build_mask(None, 3) is None

    @pytest.mark.usefixtures("float64")
    def test_grads_with_mask(self, rng):
        encoder = TransformerEncoder(8, 2, 16, 1, rng, causal=True)
        encoder.eval()
        valid = np.array([[True, True, False], [True, True, True]])
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        gradcheck(lambda a: encoder(a, valid), [x], atol=1e-3, rtol=5e-3)
