"""Tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.nn.functional as F
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7)))).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        assert np.allclose(a, b, atol=1e-6)

    def test_extreme_values_finite(self):
        out = F.softmax(Tensor([[1e4, -1e4, 0.0]])).numpy()
        assert np.all(np.isfinite(out))

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(F.log_softmax(x).numpy(),
                           np.log(F.softmax(x).numpy()), atol=1e-5)

    @pytest.mark.usefixtures("float64")
    def test_grads_along_each_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        g = Tensor(rng.normal(size=(3, 4)))
        gradcheck(lambda a: F.softmax(a, axis=0) * g, [x])
        gradcheck(lambda a: F.softmax(a, axis=1) * g, [x])
        gradcheck(lambda a: F.log_softmax(a, axis=1) * g, [x])


class TestActivations:
    def test_gelu_known_points(self):
        # GELU(0) = 0; GELU is ~x for large positive x, ~0 for large negative.
        out = F.gelu(Tensor([0.0, 10.0, -10.0])).numpy()
        assert out[0] == pytest.approx(0.0, abs=1e-6)
        assert out[1] == pytest.approx(10.0, rel=1e-3)
        assert out[2] == pytest.approx(0.0, abs=1e-3)

    @pytest.mark.usefixtures("float64")
    def test_gelu_grad(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda a: F.gelu(a), [x])

    def test_relu_tanh_sigmoid_delegate(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        assert np.allclose(F.relu(x).numpy(), np.maximum(x.numpy(), 0))
        assert np.allclose(F.tanh(x).numpy(), np.tanh(x.numpy()), atol=1e-6)
        assert np.allclose(F.sigmoid(x).numpy(), 1 / (1 + np.exp(-x.numpy())), atol=1e-6)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_p_zero_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert F.dropout(x, 0.0, training=True, rng=rng) is x

    def test_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.02)
        # Surviving entries are scaled by 1/(1-p).
        survivors = out[out > 0]
        assert np.allclose(survivors, 1.0 / 0.7, atol=1e-5)

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True, rng=rng)


class TestNormalize:
    @given(hnp.arrays(np.float64, (4, 6), elements=st.floats(-5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_l2_normalize_unit_norm(self, data):
        out = F.l2_normalize(Tensor(data)).numpy()
        norms = np.linalg.norm(out, axis=-1)
        nonzero = np.linalg.norm(data, axis=-1) > 1e-5
        assert np.allclose(norms[nonzero], 1.0, atol=1e-4)

    def test_cosine_similarity_bounds(self, rng):
        a = Tensor(rng.normal(size=(8, 5)))
        b = Tensor(rng.normal(size=(8, 5)))
        sim = F.cosine_similarity(a, b).numpy()
        assert (np.abs(sim) <= 1.0 + 1e-5).all()
        self_sim = F.cosine_similarity(a, a).numpy()
        assert np.allclose(self_sim, 1.0, atol=1e-5)
