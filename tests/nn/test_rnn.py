"""Tests for the GRU layer."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestGRUCell:
    def test_shapes(self, rng):
        cell = GRUCell(6, 4, rng)
        x = Tensor(rng.normal(size=(3, 6)))
        h = Tensor(np.zeros((3, 4)))
        assert cell(x, h).shape == (3, 4)

    def test_gate_interpolation_bounds(self, rng):
        """New state is a convex combination of candidate and previous state,
        so with h=0 the output is bounded by tanh's range."""
        cell = GRUCell(4, 4, rng)
        x = Tensor(rng.normal(size=(8, 4)) * 10)
        h = Tensor(np.zeros((8, 4)))
        out = cell(x, h).numpy()
        assert (np.abs(out) <= 1.0 + 1e-5).all()

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        cell = GRUCell(4, 3, rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        gradcheck(lambda a, b: cell(a, b), [x, h], atol=5e-4)


class TestGRU:
    def test_output_shape(self, rng):
        gru = GRU(6, 4, rng)
        out = gru(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 4)

    def test_padded_steps_carry_state(self, rng):
        """Hidden state must pass through padded positions unchanged."""
        gru = GRU(4, 3, rng)
        x = rng.normal(size=(1, 4, 4))
        mask = np.array([[True, True, False, False]])
        out = gru(Tensor(x), mask).numpy()
        assert np.allclose(out[0, 1], out[0, 2], atol=1e-6)
        assert np.allclose(out[0, 2], out[0, 3], atol=1e-6)

    def test_left_padding_matches_unpadded(self, rng):
        """A left-padded sequence must end in the same state as the unpadded one."""
        gru = GRU(4, 3, rng)
        seq = rng.normal(size=(1, 3, 4))
        plain = gru(Tensor(seq)).numpy()[0, -1]
        padded = np.concatenate([np.zeros((1, 2, 4)), seq], axis=1)
        mask = np.array([[False, False, True, True, True]])
        with_pad = gru(Tensor(padded), mask).numpy()[0, -1]
        assert np.allclose(plain, with_pad, atol=1e-5)

    def test_last_state_helper(self, rng):
        gru = GRU(4, 3, rng)
        x = Tensor(rng.normal(size=(2, 5, 4)))
        assert np.allclose(gru.last_state(x).numpy(), gru(x).numpy()[:, -1], atol=1e-6)

    @pytest.mark.usefixtures("float64")
    def test_grads_through_time(self, rng):
        gru = GRU(3, 3, rng)
        x = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        mask = np.array([[1, 1, 1, 0], [1, 1, 1, 1]], dtype=bool)
        gradcheck(lambda a: gru(a, mask), [x], atol=5e-4)
