"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Linear, clip_grad_norm
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


def quadratic_steps(optimizer_factory, steps=200):
    """Minimize ||x - 3||^2 and return the final parameter."""
    p = Parameter(np.array([0.0, 0.0]))
    opt = optimizer_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        loss = ((p - Tensor([3.0, 3.0])) ** 2).sum()
        loss.backward()
        opt.step()
    return p.numpy()


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda ps: SGD(ps, lr=0.1))
        assert np.allclose(final, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        final = quadratic_steps(lambda ps: SGD(ps, lr=0.05, momentum=0.9))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.numpy()[0] < 10.0

    def test_none_grads_skipped(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no grad set; must not crash
        assert p.numpy()[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda ps: Adam(ps, lr=0.1))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        """First Adam step should be ~lr in the gradient direction."""
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        assert p.numpy()[0] == pytest.approx(-0.1, rel=1e-3)

    def test_frozen_rows_stay_zero(self, rng):
        emb_weight = Parameter(rng.normal(size=(4, 3)))
        emb_weight.data[0] = 0.0
        emb_weight.frozen_rows = np.array([0])
        opt = Adam([emb_weight], lr=0.5)
        emb_weight.grad = np.ones((4, 3))
        opt.step()
        assert np.allclose(emb_weight.numpy()[0], 0.0)
        assert not np.allclose(emb_weight.numpy()[1], 0.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestAdamW:
    def test_converges(self):
        final = quadratic_steps(lambda ps: AdamW(ps, lr=0.1, weight_decay=0.001))
        assert np.allclose(final, 3.0, atol=0.05)

    def test_decay_decoupled_from_moments(self):
        """AdamW decay must shrink weights even when gradients are zero."""
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.numpy()[0] == pytest.approx(10.0 * (1 - 0.1 * 0.5), rel=1e-5)
        assert opt.weight_decay == 0.5  # restored after the step


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad, 0.1)

    def test_training_a_layer_end_to_end(self, rng):
        layer = Linear(3, 1, rng)
        w_true = np.array([[1.0, -2.0, 0.5]])
        x = rng.normal(size=(64, 3))
        y = x @ w_true.T
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = ((layer(Tensor(x)) - Tensor(y)) ** 2).mean()
            loss.backward()
            clip_grad_norm(layer.parameters(), 10.0)
            opt.step()
        assert loss.item() < 1e-3
