"""Tests for Linear, Embedding, LayerNorm, Dropout, FeedForward."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, FeedForward, LayerNorm, Linear
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestLinear:
    def test_output_shape_and_value(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        expected = x @ layer.weight.numpy().T + layer.bias.numpy()
        assert np.allclose(out.numpy(), expected, atol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_batched_input(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 3)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gradcheck(lambda a, *ps: layer(a), [x] + layer.parameters())


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng)
        out = emb(np.array([[1, 2], [3, 4], [5, 5]]))
        assert out.shape == (3, 2, 6)

    def test_padding_row_zero_and_frozen(self, rng):
        emb = Embedding(10, 6, rng, padding_idx=0)
        assert np.allclose(emb.weight.numpy()[0], 0.0)
        assert np.array_equal(emb.weight.frozen_rows, [0])

    def test_gradient_scatter(self, rng):
        emb = Embedding(5, 3, rng)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[1], 2.0)
        assert np.allclose(grad[2], 1.0)
        assert np.allclose(grad[0], 0.0)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 3, rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestLayerNorm:
    def test_output_statistics(self, rng):
        norm = LayerNorm(16)
        out = norm(Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 16)))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learned_affine(self, rng):
        norm = LayerNorm(4)
        norm.gamma.data[...] = 2.0
        norm.beta.data[...] = 1.0
        out = norm(Tensor(rng.normal(size=(3, 4)))).numpy()
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-4)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        norm = LayerNorm(5)
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        gradcheck(lambda a, *ps: norm(a), [x] + norm.parameters())


class TestDropoutLayer:
    def test_respects_training_mode(self, rng):
        layer = Dropout(0.5, rng)
        x = Tensor(np.ones((50, 50)))
        train_out = layer(x).numpy()
        assert (train_out == 0).any()
        layer.eval()
        assert layer(x) is x

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.5, rng)


class TestFeedForward:
    def test_shape_preserved(self, rng):
        ffn = FeedForward(8, 16, rng)
        out = ffn(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_relu_variant(self, rng):
        ffn = FeedForward(8, 16, rng, activation="relu")
        out = ffn(Tensor(rng.normal(size=(3, 8))))
        assert out.shape == (3, 8)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            FeedForward(8, 16, rng, activation="swish")

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        ffn = FeedForward(4, 8, rng)
        ffn.eval()
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda a: ffn(a), [x], atol=5e-4)
