"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Adam, ConstantLR, StepDecay, WarmupCosine
from repro.nn.module import Parameter


def make_opt(lr=1.0):
    return Adam([Parameter(np.zeros(2))], lr=lr)


class TestConstant:
    def test_never_changes(self):
        opt = make_opt(0.5)
        schedule = ConstantLR(opt)
        for _ in range(5):
            assert schedule.step() == pytest.approx(0.5)


class TestWarmupCosine:
    def test_linear_warmup(self):
        opt = make_opt(1.0)
        schedule = WarmupCosine(opt, warmup_steps=10, total_steps=100)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[4] == pytest.approx(0.5)
        assert all(b > a for a, b in zip(lrs, lrs[1:]))

    def test_decays_to_min(self):
        opt = make_opt(1.0)
        schedule = WarmupCosine(opt, warmup_steps=2, total_steps=20, min_lr=0.05)
        lrs = [schedule.step() for _ in range(25)]
        assert lrs[-1] == pytest.approx(0.05, abs=1e-6)

    def test_peak_at_warmup_end(self):
        opt = make_opt(1.0)
        schedule = WarmupCosine(opt, warmup_steps=5, total_steps=50)
        lrs = [schedule.step() for _ in range(6)]
        assert max(lrs) == pytest.approx(1.0)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            WarmupCosine(make_opt(), warmup_steps=10, total_steps=5)

    def test_updates_optimizer(self):
        opt = make_opt(1.0)
        schedule = WarmupCosine(opt, warmup_steps=2, total_steps=10)
        schedule.step()
        assert opt.lr == pytest.approx(0.5)


class TestStepDecay:
    def test_halving(self):
        opt = make_opt(1.0)
        schedule = StepDecay(opt, step_size=3, gamma=0.5)
        lrs = [schedule.step() for _ in range(7)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[2] == pytest.approx(0.5)   # step 3
        assert lrs[5] == pytest.approx(0.25)  # step 6
