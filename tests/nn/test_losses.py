"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (bpr_loss, cross_entropy, cross_entropy_with_candidates, info_nce,
                      info_nce_from_logits)
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -log_probs[np.arange(4), targets].mean()
        assert loss == pytest.approx(manual, rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_ignore_index(self, rng):
        logits = rng.normal(size=(3, 4))
        full = cross_entropy(Tensor(logits[:2]), np.array([1, 2])).item()
        with_ignored = cross_entropy(Tensor(logits), np.array([1, 2, -1]),
                                     ignore_index=-1).item()
        assert full == pytest.approx(with_ignored, rel=1e-5)

    def test_all_ignored_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.array([-1, -1]),
                          ignore_index=-1)

    def test_label_smoothing_increases_confident_loss(self, rng):
        logits = np.zeros((2, 4))
        logits[:, 0] = 10.0
        targets = np.array([0, 0])
        plain = cross_entropy(Tensor(logits), targets).item()
        smoothed = cross_entropy(Tensor(logits), targets, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_rejects_3d_logits(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3, 4))), np.array([0, 1]))

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        targets = np.array([1, 0, 3, 2])
        gradcheck(lambda a: cross_entropy(a, targets), [logits])
        gradcheck(lambda a: cross_entropy(a, targets, label_smoothing=0.2), [logits])


class TestCandidatesCE:
    def test_positive_column_convention(self, rng):
        scores = np.zeros((3, 5))
        scores[:, 0] = 10.0
        loss = cross_entropy_with_candidates(Tensor(scores)).item()
        assert loss < 0.01

    def test_custom_positive_column(self, rng):
        scores = np.zeros((3, 5))
        scores[:, 2] = 10.0
        loss = cross_entropy_with_candidates(Tensor(scores), positive_column=2).item()
        assert loss < 0.01


class TestBPR:
    def test_ordering(self):
        good = bpr_loss(Tensor([5.0]), Tensor([0.0])).item()
        bad = bpr_loss(Tensor([0.0]), Tensor([5.0])).item()
        assert good < bad

    def test_equal_scores_log2(self):
        loss = bpr_loss(Tensor([1.0]), Tensor([1.0])).item()
        assert loss == pytest.approx(np.log(2.0), rel=1e-5)

    def test_stable_for_large_gaps(self):
        loss = bpr_loss(Tensor([1e4]), Tensor([-1e4])).item()
        assert np.isfinite(loss) and loss >= 0.0

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        p = Tensor(rng.normal(size=(5,)), requires_grad=True)
        n = Tensor(rng.normal(size=(5,)), requires_grad=True)
        gradcheck(lambda a, b: bpr_loss(a, b), [p, n])


class TestInfoNCE:
    def test_aligned_views_beat_shuffled(self, rng):
        a = Tensor(rng.normal(size=(8, 6)))
        aligned = info_nce(a, a, temperature=0.5).item()
        shuffled = info_nce(a, Tensor(rng.normal(size=(8, 6))), temperature=0.5).item()
        assert aligned < shuffled

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            info_nce(Tensor(rng.normal(size=(4, 3))), Tensor(rng.normal(size=(5, 3))))

    def test_temperature_sharpens(self, rng):
        a = Tensor(rng.normal(size=(6, 4)))
        b = Tensor(a.numpy() + 0.01 * rng.normal(size=(6, 4)))
        sharp = info_nce(a, b, temperature=0.05).item()
        soft = info_nce(a, b, temperature=5.0).item()
        assert sharp < soft  # near-identical views are separated better when sharp

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        gradcheck(lambda x, y: info_nce(x, y, temperature=0.5), [a, b], atol=5e-4)

    def test_from_logits(self, rng):
        logits = np.zeros((3, 4))
        logits[0, 1] = logits[1, 0] = logits[2, 3] = 10.0
        loss = info_nce_from_logits(Tensor(logits), np.array([1, 0, 3])).item()
        assert loss < 0.01
