"""Graph-mechanics tests: accumulation, no_grad, detach, diamond graphs."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad, set_default_dtype


class TestGraphMechanics:
    def test_diamond_graph_accumulates_both_paths(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # two paths through y
        z.backward()
        assert np.allclose(x.grad, [6.0])

    def test_shared_leaf_in_two_branches(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (x * x).sum() + x.sum()
        out.backward()
        assert np.allclose(x.grad, 2 * x.numpy() + 1)

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2.0
        y.backward()
        first = x.grad.copy()
        y2 = x * 2.0
        y2.backward()
        assert np.allclose(x.grad, 2 * first)

    def test_zero_grad(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_shape_mismatch(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_explicit_upstream_gradient(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.backward()  # iterative topo sort must not hit recursion limits
        assert np.allclose(x.grad, [1.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._prev == ()

    def test_no_grad_nesting_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        z = y * 3.0
        assert not z.requires_grad
        # detach shares storage
        assert y.numpy() is not None

    def test_comparisons_return_plain_arrays(self):
        a, b = Tensor([1.0, 2.0]), Tensor([2.0, 1.0])
        assert isinstance(a > b, np.ndarray)
        assert (a < b).tolist() == [True, False]
        assert (a >= Tensor([1.0, 3.0])).tolist() == [True, False]
        assert (a <= 1.5).tolist() == [True, False]


class TestDtypes:
    def test_default_dtype_is_float32(self):
        assert Tensor([1.0]).dtype == np.float32

    def test_set_default_dtype_rejects_ints(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_integer_data_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_item_and_len_and_repr(self):
        t = Tensor([[1.0, 2.0]])
        assert len(t) == 1
        assert Tensor([5.0]).item() == pytest.approx(5.0)
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_copy_and_astype(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 99.0
        assert t.numpy()[0] == pytest.approx(1.0)
        assert t.astype(np.float64).dtype == np.float64
