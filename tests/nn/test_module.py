"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module, ModuleList, Sequential
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, no_grad


class Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_named_parameters_paths(self, rng):
        net = Net(rng)
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"}

    def test_num_parameters(self, rng):
        net = Net(rng)
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_parameter_requires_grad_inside_no_grad(self):
        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad

    def test_modules_traversal(self, rng):
        net = Net(rng)
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 2

    def test_register_parameter(self, rng):
        net = Net(rng)
        net.register_parameter("extra", Parameter(np.zeros(2)))
        assert "extra" in dict(net.named_parameters())


class TestModes:
    def test_train_eval_propagate(self, rng):
        net = Sequential(Linear(4, 4, rng), Dropout(0.5, rng))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self, rng):
        net = Net(rng)
        out = net(Tensor(rng.normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        net1, net2 = Net(rng), Net(rng)
        assert not np.allclose(net1.fc1.weight.numpy(), net2.fc1.weight.numpy())
        net2.load_state_dict(net1.state_dict())
        assert np.allclose(net1.fc1.weight.numpy(), net2.fc1.weight.numpy())

    def test_state_dict_is_a_copy(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["scale"][...] = 99.0
        assert net.scale.numpy()[0] == pytest.approx(1.0)

    def test_missing_key_raises(self, rng):
        net = Net(rng)
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestContainers:
    def test_module_list(self, rng):
        layers = ModuleList([Linear(2, 2, rng) for _ in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]
        # Parameters of all children are registered.
        parent = Module()
        parent.layers = layers
        assert len(parent.parameters()) == 6

    def test_sequential_chains(self, rng):
        net = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        out = net(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
