"""Tests for Adagrad and RMSprop."""

import numpy as np
import pytest

from repro.nn import Adagrad, RMSprop
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


def minimize(optimizer_factory, steps=300):
    p = Parameter(np.array([0.0, 0.0]))
    opt = optimizer_factory([p])
    for _ in range(steps):
        opt.zero_grad()
        ((p - Tensor([2.0, -1.0])) ** 2).sum().backward()
        opt.step()
    return p.numpy()


class TestAdagrad:
    def test_converges(self):
        final = minimize(lambda ps: Adagrad(ps, lr=0.5))
        assert np.allclose(final, [2.0, -1.0], atol=1e-2)

    def test_effective_lr_decays(self):
        """Repeated identical gradients produce shrinking step sizes."""
        p = Parameter(np.array([0.0]))
        opt = Adagrad([p], lr=1.0)
        steps = []
        for _ in range(4):
            before = p.numpy().copy()
            p.grad = np.array([1.0])
            opt.step()
            steps.append(abs(float((p.numpy() - before)[0])))
        assert steps[0] > steps[1] > steps[2] > steps[3]

    def test_weight_decay(self):
        p = Parameter(np.array([5.0]))
        opt = Adagrad([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.numpy()[0] < 5.0

    def test_frozen_rows(self, rng):
        p = Parameter(rng.normal(size=(3, 2)))
        p.data[0] = 0.0
        p.frozen_rows = np.array([0])
        opt = Adagrad([p], lr=0.5)
        p.grad = np.ones((3, 2))
        opt.step()
        assert np.allclose(p.numpy()[0], 0.0)


class TestRMSprop:
    def test_converges(self):
        final = minimize(lambda ps: RMSprop(ps, lr=0.02))
        assert np.allclose(final, [2.0, -1.0], atol=5e-2)

    def test_with_momentum_converges(self):
        final = minimize(lambda ps: RMSprop(ps, lr=0.01, momentum=0.9))
        assert np.allclose(final, [2.0, -1.0], atol=5e-2)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RMSprop([Parameter(np.zeros(1))], alpha=1.5)

    def test_normalizes_gradient_scale(self):
        """First steps are ~lr-sized regardless of raw gradient magnitude."""
        steps = []
        for scale in (1.0, 1000.0):
            p = Parameter(np.array([0.0]))
            opt = RMSprop([p], lr=0.1, alpha=0.9)
            p.grad = np.array([scale])
            opt.step()
            steps.append(abs(float(p.numpy()[0])))
        assert steps[0] == pytest.approx(steps[1], rel=1e-3)
