"""Tests for the sinusoidal positional encoding."""

import numpy as np
import pytest

from repro.nn import SinusoidalPositionalEncoding


class TestSinusoidal:
    def test_shape_and_determinism(self):
        enc = SinusoidalPositionalEncoding(50, 16)
        out = enc(np.array([[0, 1, 2], [3, 4, 5]]))
        assert out.shape == (2, 3, 16)
        assert np.allclose(out.numpy(), enc(np.array([[0, 1, 2], [3, 4, 5]])).numpy())

    def test_position_zero_pattern(self):
        enc = SinusoidalPositionalEncoding(10, 8)
        row = enc(np.array([0])).numpy()[0]
        assert np.allclose(row[0::2], 0.0, atol=1e-6)   # sin(0)
        assert np.allclose(row[1::2], 1.0, atol=1e-6)   # cos(0)

    def test_values_bounded(self):
        enc = SinusoidalPositionalEncoding(100, 32)
        table = enc(np.arange(100)).numpy()
        assert (np.abs(table) <= 1.0 + 1e-6).all()

    def test_distinct_positions_distinct_codes(self):
        enc = SinusoidalPositionalEncoding(64, 16)
        table = enc(np.arange(64)).numpy()
        gram = table @ table.T
        # No two positions share an identical encoding.
        for i in range(63):
            assert not np.allclose(table[i], table[i + 1], atol=1e-5)

    def test_no_parameters(self):
        enc = SinusoidalPositionalEncoding(10, 8)
        assert enc.parameters() == []

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalPositionalEncoding(10, 7)

    def test_out_of_range_rejected(self):
        enc = SinusoidalPositionalEncoding(10, 8)
        with pytest.raises(IndexError):
            enc(np.array([10]))
