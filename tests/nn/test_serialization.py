"""Tests for npz checkpointing."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, load_checkpoint, save_checkpoint


class TestCheckpoints:
    def test_roundtrip(self, rng, tmp_path):
        model = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        path = save_checkpoint(model, tmp_path / "model.npz", extra={"epoch": 7})
        clone = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        extra = load_checkpoint(clone, path)
        assert extra == {"epoch": 7}
        for (name_a, p_a), (name_b, p_b) in zip(model.named_parameters(),
                                                clone.named_parameters()):
            assert name_a == name_b
            assert np.allclose(p_a.numpy(), p_b.numpy())

    def test_suffix_enforced(self, rng, tmp_path):
        model = Sequential(Linear(2, 2, rng))
        path = save_checkpoint(model, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_architecture_mismatch_rejected(self, rng, tmp_path):
        model = Sequential(Linear(4, 8, rng))
        path = save_checkpoint(model, tmp_path / "a.npz")
        other = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        with pytest.raises(KeyError):
            load_checkpoint(other, path)

    def test_non_checkpoint_rejected(self, rng, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, foo=np.zeros(3))
        model = Sequential(Linear(2, 2, rng))
        with pytest.raises(ValueError):
            load_checkpoint(model, path)

    def test_directories_created(self, rng, tmp_path):
        model = Sequential(Linear(2, 2, rng))
        path = save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()
