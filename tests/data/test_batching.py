"""Tests for padding and batch assembly (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchLoader, PAD_ITEM, collate, leave_one_out_split, pad_sequences


class TestPadSequences:
    def test_left_padding(self):
        matrix, mask = pad_sequences([[1, 2], [3]], max_len=3)
        assert matrix.tolist() == [[0, 1, 2], [0, 0, 3]]
        assert mask.tolist() == [[False, True, True], [False, False, True]]

    def test_truncation_keeps_recent(self):
        matrix, _ = pad_sequences([[1, 2, 3, 4]], max_len=2)
        assert matrix.tolist() == [[3, 4]]

    def test_empty_rows(self):
        matrix, mask = pad_sequences([[], [1]], max_len=2)
        assert matrix[0].tolist() == [PAD_ITEM, PAD_ITEM]
        assert not mask[0].any()

    def test_all_empty_min_width(self):
        matrix, mask = pad_sequences([[], []])
        assert matrix.shape == (2, 1)

    @staticmethod
    def _reference_pad(sequences, max_len=None, pad_value=PAD_ITEM):
        """The seed per-row implementation, kept as the semantic oracle."""
        if max_len is None:
            max_len = max((len(s) for s in sequences), default=1)
        max_len = max(max_len, 1)
        matrix = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
        mask = np.zeros((len(sequences), max_len), dtype=bool)
        for row, seq in enumerate(sequences):
            tail = list(seq)[-max_len:]
            if tail:
                matrix[row, -len(tail):] = tail
                mask[row, -len(tail):] = True
        return matrix, mask

    @given(st.lists(st.lists(st.integers(1, 100), max_size=12), min_size=0, max_size=8),
           st.one_of(st.none(), st.integers(1, 6)))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_reference(self, sequences, max_len):
        matrix, mask = pad_sequences(sequences, max_len=max_len)
        expected_matrix, expected_mask = self._reference_pad(sequences, max_len=max_len)
        assert (matrix == expected_matrix).all()
        assert (mask == expected_mask).all()

    @given(st.lists(st.lists(st.integers(1, 100), max_size=8), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_content(self, sequences):
        matrix, mask = pad_sequences(sequences)
        # Mask is True exactly where a real (non-pad) token was placed.
        assert ((matrix != PAD_ITEM) == mask).all() or any(
            PAD_ITEM in s for s in sequences)
        # Row-wise: number of valid entries equals (possibly truncated) length.
        for row, seq in zip(mask, sequences):
            assert row.sum() == min(len(seq), matrix.shape[1])
        # Valid region is a contiguous suffix.
        for row in mask:
            idx = np.flatnonzero(row)
            if idx.size:
                assert idx[-1] == len(row) - 1
                assert (np.diff(idx) == 1).all()


class TestCollate:
    def test_batch_fields(self, tiny_dataset, tiny_split):
        batch = collate(tiny_split.test[:8], tiny_dataset.schema)
        assert batch.size == 8
        assert set(batch.items) == set(tiny_dataset.schema.behaviors)
        assert batch.merged_items.shape == batch.merged_behaviors.shape
        assert (batch.targets > 0).all()

    def test_empty_collate_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            collate([], tiny_dataset.schema)

    def test_behavior_ids_match_schema(self, tiny_dataset, tiny_split):
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        valid_ids = set(range(tiny_dataset.schema.num_behaviors))
        assert set(np.unique(batch.merged_behaviors[batch.merged_mask])) <= valid_ids


class TestBatchLoader:
    def test_covers_all_examples(self, tiny_dataset, tiny_split, rng):
        loader = BatchLoader(tiny_split.train, tiny_dataset.schema, 16, rng=rng)
        seen = sum(batch.size for batch in loader)
        assert seen == len(tiny_split.train)

    def test_len(self, tiny_dataset, tiny_split, rng):
        loader = BatchLoader(tiny_split.train, tiny_dataset.schema, 16, rng=rng)
        assert len(loader) == (len(tiny_split.train) + 15) // 16

    def test_drop_last(self, tiny_dataset, tiny_split, rng):
        loader = BatchLoader(tiny_split.train, tiny_dataset.schema, 16, rng=rng,
                             drop_last=True)
        assert all(batch.size == 16 for batch in loader)

    def test_shuffle_requires_rng(self, tiny_dataset, tiny_split):
        with pytest.raises(ValueError):
            BatchLoader(tiny_split.train, tiny_dataset.schema, 16)

    def test_no_shuffle_preserves_order(self, tiny_dataset, tiny_split):
        loader = BatchLoader(tiny_split.test, tiny_dataset.schema, 4, shuffle=False)
        first = next(iter(loader))
        expected = [e.user for e in tiny_split.test[:4]]
        assert first.users.tolist() == expected

    def test_invalid_batch_size(self, tiny_dataset, tiny_split, rng):
        with pytest.raises(ValueError):
            BatchLoader(tiny_split.train, tiny_dataset.schema, 0, rng=rng)

    def test_shuffle_reproducible(self, tiny_dataset, tiny_split):
        orders = []
        for _ in range(2):
            loader = BatchLoader(tiny_split.train, tiny_dataset.schema, 8,
                                 rng=np.random.default_rng(42))
            orders.append([tuple(b.users.tolist()) for b in loader])
        assert orders[0] == orders[1]
