"""Tests for the behavior schema and interaction types."""

import pytest

from repro.data import BehaviorSchema, Interaction, PAD_ITEM, TAOBAO_SCHEMA, YELP_SCHEMA


class TestInteraction:
    def test_valid_event(self):
        event = Interaction(0, 5, "view", 10)
        assert event.item == 5

    def test_padding_item_rejected(self):
        with pytest.raises(ValueError):
            Interaction(0, PAD_ITEM, "view", 1)

    def test_negative_user_rejected(self):
        with pytest.raises(ValueError):
            Interaction(-1, 1, "view", 1)

    def test_frozen(self):
        event = Interaction(0, 1, "view", 1)
        with pytest.raises(AttributeError):
            event.item = 2


class TestBehaviorSchema:
    def test_auxiliary_excludes_target(self):
        assert TAOBAO_SCHEMA.auxiliary == ("view", "cart", "fav")
        assert TAOBAO_SCHEMA.target == "buy"

    def test_behavior_ids_stable(self):
        assert TAOBAO_SCHEMA.behavior_id("view") == 0
        assert TAOBAO_SCHEMA.behavior_id("buy") == 3

    def test_unknown_behavior(self):
        with pytest.raises(KeyError):
            TAOBAO_SCHEMA.behavior_id("wishlist")

    def test_target_must_be_member(self):
        with pytest.raises(ValueError):
            BehaviorSchema(behaviors=("a", "b"), target="c")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            BehaviorSchema(behaviors=("a", "a"), target="a")

    def test_subset_keeps_order(self):
        sub = TAOBAO_SCHEMA.subset(("buy", "view"))
        assert sub.behaviors == ("view", "buy")
        assert sub.target == "buy"

    def test_subset_must_keep_target(self):
        with pytest.raises(ValueError):
            TAOBAO_SCHEMA.subset(("view", "cart"))

    def test_num_behaviors(self):
        assert TAOBAO_SCHEMA.num_behaviors == 4
        assert YELP_SCHEMA.num_behaviors == 3
