"""Tests for leave-one-out splitting — especially the no-leakage invariant."""

import pytest

from repro.data import leave_one_out_split


class TestLeaveOneOut:
    def test_one_test_and_valid_per_user(self, toy_dataset):
        split = leave_one_out_split(toy_dataset)
        assert len(split.test) == 3
        assert len(split.valid) == 3

    def test_test_targets_are_last_buys(self, toy_dataset):
        split = leave_one_out_split(toy_dataset)
        targets = {e.user: e.target for e in split.test}
        assert targets == {0: 2, 1: 4, 2: 5}

    def test_valid_targets_are_second_to_last(self, toy_dataset):
        split = leave_one_out_split(toy_dataset)
        targets = {e.user: e.target for e in split.valid}
        assert targets == {0: 3, 1: 5, 2: 1}

    def test_inputs_strictly_before_target(self, toy_dataset):
        """No event at or after the predicted buy may appear in the inputs."""
        split = leave_one_out_split(toy_dataset)
        for example in split.test:
            # user 0 test: buy item 2 at ts 6; view seq before is [1,2,3].
            if example.user == 0:
                assert list(example.inputs["view"]) == [1, 2, 3]
                assert list(example.inputs["buy"]) == [1, 3]

    def test_merged_inputs_aligned(self, toy_dataset):
        split = leave_one_out_split(toy_dataset)
        for example in split.test + split.valid + split.train:
            assert len(example.merged_items) == len(example.merged_behavior_ids)
            assert len(example.merged_items) > 0

    def test_train_examples_exclude_holdout(self, toy_dataset):
        split = leave_one_out_split(toy_dataset)
        for example in split.train:
            test_target_ts = {0: 6, 1: 5, 2: 5}[example.user]
            # train targets come from positions before the last two buys
            assert example.target in toy_dataset.sequence(example.user, "buy")[:-2]

    def test_max_len_truncation(self, toy_dataset):
        split = leave_one_out_split(toy_dataset, max_len=1)
        for example in split.test:
            for behavior, seq in example.inputs.items():
                assert len(seq) <= 1
            assert len(example.merged_items) <= 1

    def test_max_train_per_user(self, tiny_dataset):
        capped = leave_one_out_split(tiny_dataset, max_train_per_user=1)
        per_user = {}
        for example in capped.train:
            per_user[example.user] = per_user.get(example.user, 0) + 1
        assert all(count <= 1 for count in per_user.values())

    def test_users_with_few_targets_skipped(self, toy_dataset):
        restricted = toy_dataset.restrict_behaviors(["buy"])
        split = leave_one_out_split(restricted)
        # All three toy users have exactly 3 buys; predicting the first buy has
        # no history so it yields no train example, but valid/test survive.
        assert len(split.test) == 3

    def test_summary(self, toy_dataset):
        summary = leave_one_out_split(toy_dataset).summary()
        assert set(summary) == {"train", "valid", "test"}
