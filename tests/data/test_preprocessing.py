"""Tests for k-core filtering, truncation, id remapping and holdout dropping."""

import pytest

from repro.data import (BehaviorSchema, Interaction, MultiBehaviorDataset,
                        drop_holdout_targets, k_core_filter, remap_ids, truncate_history)

SCHEMA = BehaviorSchema(behaviors=("view", "buy"), target="buy")


def make_dataset(events, num_items=20):
    return MultiBehaviorDataset(events, SCHEMA, num_items)


class TestKCore:
    def test_drops_sparse_users(self):
        events = [Interaction(0, i, "buy", i) for i in range(1, 6)]       # rich user
        events += [Interaction(0, i, "view", i + 10) for i in range(1, 6)]
        events += [Interaction(1, 1, "buy", 1)]                            # 1 buy only
        ds = k_core_filter(make_dataset(events), min_user_targets=3,
                           min_item_interactions=1)
        assert ds.num_users == 1

    def test_drops_rare_items(self):
        events = []
        for u in range(3):
            events += [Interaction(u, 1, "buy", 1 + u), Interaction(u, 2, "buy", 10 + u),
                       Interaction(u, 3, "buy", 20 + u)]
        events += [Interaction(0, 9, "view", 100)]  # item 9 appears once
        ds = k_core_filter(make_dataset(events), min_user_targets=3,
                           min_item_interactions=2)
        items = {e.item for e in ds.interactions()}
        assert len(items) == 3  # item 9 dropped, survivors remapped densely

    def test_reaches_fixed_point(self):
        # Dropping an item may push a user below threshold; iteration handles it.
        events = [Interaction(0, 1, "buy", 1), Interaction(0, 2, "buy", 2),
                  Interaction(0, 3, "buy", 3),
                  Interaction(1, 1, "buy", 1), Interaction(1, 2, "buy", 2),
                  Interaction(1, 4, "buy", 3)]
        ds = k_core_filter(make_dataset(events), min_user_targets=3,
                           min_item_interactions=2)
        for user in ds.users:
            assert len(ds.sequence(user, "buy")) >= 3

    def test_ids_remapped_densely(self):
        events = [Interaction(5, 10, "buy", t) for t in range(1, 4)]
        ds = k_core_filter(make_dataset(events), min_user_targets=3,
                           min_item_interactions=1)
        assert ds.users == [0]
        assert ds.num_items == 1


class TestTruncate:
    def test_keeps_most_recent(self):
        events = [Interaction(0, i % 5 + 1, "view", i) for i in range(20)]
        ds = truncate_history(make_dataset(events, 10), max_events_per_user=5)
        assert ds.num_interactions == 5
        times = [e.timestamp for e in ds.interactions()]
        assert min(times) == 15


class TestRemap:
    def test_preserves_structure(self, toy_dataset):
        remapped = remap_ids(toy_dataset)
        assert remapped.num_users == toy_dataset.num_users
        assert remapped.num_interactions == toy_dataset.num_interactions

    def test_cluster_attribute_follows(self):
        import numpy as np
        events = [Interaction(0, 3, "buy", t) for t in range(3)] \
            + [Interaction(0, 7, "view", 10)]
        ds = make_dataset(events, num_items=10)
        ds.item_clusters = np.arange(10)
        remapped = remap_ids(ds)
        # Items 3 and 7 survive as ids 1 and 2; clusters follow.
        assert list(remapped.item_clusters) == [2, 6]


class TestDropHoldout:
    def test_holdout_events_removed(self, toy_dataset):
        train = drop_holdout_targets(toy_dataset, 2)
        for user in toy_dataset.users:
            full = toy_dataset.sequence(user, "buy")
            kept = train.sequence(user, "buy")
            assert kept == full[:-2]

    def test_later_auxiliary_events_removed_too(self):
        events = [Interaction(0, 1, "buy", 1), Interaction(0, 2, "buy", 2),
                  Interaction(0, 3, "buy", 3), Interaction(0, 4, "view", 10)]
        ds = make_dataset(events)
        train = drop_holdout_targets(ds, 2)
        assert all(e.timestamp < 2 for e in train.interactions())

    def test_zero_holdout_identity(self, toy_dataset):
        assert drop_holdout_targets(toy_dataset, 0) is toy_dataset

    def test_negative_holdout_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            drop_holdout_targets(toy_dataset, -1)
