"""Tests for the parallel input pipeline: packed collate, prefetch loader,
worker pool robustness, and sharded helpers."""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.data import collate
from repro.data.pipeline import (PackedExamples, PrefetchLoader, WorkerError,
                                 WorkerPool, batch_rng, epoch_order,
                                 parallel_map)


def _assert_batches_equal(a, b):
    assert (a.users == b.users).all()
    assert (a.targets == b.targets).all()
    assert set(a.items) == set(b.items)
    for behavior in a.items:
        assert (a.items[behavior] == b.items[behavior]).all()
        assert (a.masks[behavior] == b.masks[behavior]).all()
    assert (a.merged_items == b.merged_items).all()
    assert (a.merged_behaviors == b.merged_behaviors).all()
    assert (a.merged_mask == b.merged_mask).all()
    if a.candidates is None or b.candidates is None:
        assert a.candidates is None and b.candidates is None
    else:
        assert (a.candidates == b.candidates).all()


class TestPackedExamples:
    def test_collate_rows_matches_collate(self, tiny_dataset, tiny_split):
        packed = PackedExamples.from_examples(tiny_split.train, tiny_dataset.schema)
        rng = np.random.default_rng(0)
        for _ in range(5):
            rows = rng.choice(len(packed), size=9, replace=False)
            fast = packed.collate_rows(rows)
            reference = collate([tiny_split.train[i] for i in rows],
                                tiny_dataset.schema)
            _assert_batches_equal(fast, reference)

    def test_collate_rows_with_max_len(self, tiny_dataset, tiny_split):
        packed = PackedExamples.from_examples(tiny_split.train, tiny_dataset.schema)
        rows = np.arange(12)
        fast = packed.collate_rows(rows, max_len=3)
        reference = collate([tiny_split.train[i] for i in rows],
                            tiny_dataset.schema, max_len=3)
        _assert_batches_equal(fast, reference)

    def test_empty_rows_rejected(self, tiny_dataset, tiny_split):
        packed = PackedExamples.from_examples(tiny_split.train, tiny_dataset.schema)
        with pytest.raises(ValueError):
            packed.collate_rows(np.zeros(0, dtype=np.int64))


class TestSeeding:
    def test_batch_rng_streams_are_distinct(self):
        draws = {batch_rng(0, e, i).integers(0, 1 << 30)
                 for e in range(3) for i in range(3)}
        assert len(draws) == 9

    def test_epoch_order_is_a_permutation_and_reproducible(self):
        order = epoch_order(5, 2, 100, shuffle=True)
        assert sorted(order.tolist()) == list(range(100))
        assert (order == epoch_order(5, 2, 100, shuffle=True)).all()
        assert (epoch_order(5, 0, 10, shuffle=False) == np.arange(10)).all()


class TestPrefetchLoaderDeterminism:
    def _stream(self, split, dataset, num_workers, seed=11, epochs=1):
        loader = PrefetchLoader(split.train, dataset.schema, batch_size=16,
                                seed=seed, num_workers=num_workers,
                                negatives=4, dataset=dataset)
        try:
            return [batch for _ in range(epochs) for batch in loader]
        finally:
            loader.close()

    def test_bitwise_identical_across_worker_counts(self, tiny_dataset, tiny_split):
        serial = self._stream(tiny_split, tiny_dataset, num_workers=0, epochs=2)
        parallel = self._stream(tiny_split, tiny_dataset, num_workers=2, epochs=2)
        assert len(serial) == len(parallel) > 0
        for a, b in zip(serial, parallel):
            _assert_batches_equal(a, b)

    def test_epochs_reshuffle_but_replay_with_set_epoch(self, tiny_dataset, tiny_split):
        loader = PrefetchLoader(tiny_split.train, tiny_dataset.schema,
                                batch_size=16, seed=3)
        first = [b.users.copy() for b in loader]
        second = [b.users.copy() for b in loader]
        assert any((a != b).any() for a, b in zip(first, second))
        loader.set_epoch(0)
        replay = [b.users.copy() for b in loader]
        assert all((a == b).all() for a, b in zip(first, replay))

    def test_len_and_drop_last(self, tiny_dataset, tiny_split):
        n = len(tiny_split.train)
        loader = PrefetchLoader(tiny_split.train, tiny_dataset.schema,
                                batch_size=16)
        assert len(loader) == -(-n // 16) == len(list(loader))
        tail = PrefetchLoader(tiny_split.train, tiny_dataset.schema,
                              batch_size=16, drop_last=True)
        assert len(tail) == n // 16 == len(list(tail))

    def test_candidates_are_valid_negatives(self, tiny_dataset, tiny_split):
        for batch in self._stream(tiny_split, tiny_dataset, num_workers=0):
            assert batch.candidates.shape == (batch.size, 5)
            assert (batch.candidates[:, 0] == batch.targets).all()
            negatives = batch.candidates[:, 1:]
            assert (negatives != batch.targets[:, None]).all()
            assert (negatives >= 1).all()
            # Distinct within each row.
            assert all(len(set(row)) == len(row) for row in negatives.tolist())

    def test_validation(self, tiny_dataset, tiny_split):
        with pytest.raises(ValueError):
            PrefetchLoader(tiny_split.train, tiny_dataset.schema, batch_size=0)
        with pytest.raises(ValueError):
            PrefetchLoader(tiny_split.train, tiny_dataset.schema, batch_size=8,
                           num_workers=-1)
        with pytest.raises(ValueError):
            PrefetchLoader(tiny_split.train, tiny_dataset.schema, batch_size=8,
                           prefetch=0)
        with pytest.raises(ValueError):
            PrefetchLoader(tiny_split.train, tiny_dataset.schema, batch_size=8,
                           negatives=4)  # no dataset

    def test_abandoned_epoch_leaves_pool_reusable(self, tiny_dataset, tiny_split):
        loader = PrefetchLoader(tiny_split.train, tiny_dataset.schema,
                                batch_size=16, seed=4, num_workers=2)
        try:
            for _ in loader:
                break  # abandon mid-epoch
            loader.set_epoch(0)
            full = list(loader)
            assert len(full) == len(loader)
        finally:
            loader.close()


# ----------------------------------------------------------------------
# Worker pool robustness (factories must be module-level picklable-by-ref)
# ----------------------------------------------------------------------

def _double_factory(offset):
    def fn(x):
        return 2 * x + offset
    return fn


def _crashy_factory():
    def fn(x):
        if x == 3:
            raise KeyError("poisoned payload 3")
        return x
    return fn


def _sleepy_factory():
    def fn(x):
        time.sleep(60.0)
        return x
    return fn


def _suicidal_factory():
    def fn(x):
        import os
        os._exit(17)  # die without reporting anything
    return fn


def _array_increment_factory():
    def fn(payload):
        # Round-trips dict-of-ndarray payloads (the serving replica shape).
        return {"values": payload["values"] + 1, "tag": payload["tag"]}
    return fn


class TestWorkerPool:
    def test_parallel_map_is_order_stable(self):
        out = parallel_map(_double_factory, (7,), list(range(23)), num_workers=3)
        assert out == [2 * x + 7 for x in range(23)]

    def test_empty_payloads(self):
        assert parallel_map(_double_factory, (0,), [], num_workers=2) == []

    def test_worker_exception_reraises_with_traceback_and_reaps(self):
        before = {p.pid for p in mp.active_children()}
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_crashy_factory, (), list(range(8)), num_workers=2)
        message = str(excinfo.value)
        assert "KeyError" in message and "poisoned payload 3" in message
        assert excinfo.value.remote_traceback is not None
        # No orphaned children beyond whatever existed before.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leftover = {p.pid for p in mp.active_children()} - before
            if not leftover:
                break
            time.sleep(0.05)
        assert not leftover

    def test_silently_dead_worker_detected(self):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_suicidal_factory, (), [0], num_workers=1, timeout=30.0)
        assert "died" in str(excinfo.value)

    def test_heartbeat_timeout(self):
        pool = WorkerPool(_sleepy_factory, (), num_workers=1, timeout=0.5,
                          poll_interval=0.05)
        pool.submit(0, 0)
        with pytest.raises(WorkerError) as excinfo:
            pool.next_result()
        assert "no result within" in str(excinfo.value)
        assert pool.closed

    def test_close_is_idempotent_and_rejects_submits(self):
        pool = WorkerPool(_double_factory, (0,), num_workers=1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(0, 1)

    def test_workers_alive_tracks_liveness(self):
        pool = WorkerPool(_double_factory, (0,), num_workers=2)
        try:
            assert pool.workers_alive() == [True, True]
        finally:
            pool.close()
        deadline = time.monotonic() + 10.0
        while any(pool.workers_alive()) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.workers_alive() == [False, False]

    def test_request_transport_round_trips_via_shm(self):
        from repro.data.shm import ShmArena

        arena = ShmArena(slot_bytes=1 << 16, num_slots=4)
        pool = WorkerPool(_array_increment_factory, (), num_workers=1,
                          transport=arena, transport_copy=True,
                          transport_requests=True, transport_min_bytes=64)
        try:
            rng = np.random.default_rng(5)
            payloads = {
                task_id: {"values": rng.normal(
                    size=512).astype(np.float32), "tag": task_id}
                for task_id in range(6)
            }
            for task_id, payload in payloads.items():
                pool.submit(task_id, payload)
            seen = {}
            for _ in payloads:
                _, task_id, value = pool.next_result()
                seen[task_id] = value
            assert set(seen) == set(payloads)
            for task_id, value in seen.items():
                assert value["tag"] == task_id
                np.testing.assert_array_equal(
                    value["values"], payloads[task_id]["values"] + 1)
            assert pool.shm_results > 0  # arrays actually rode the arena
        finally:
            pool.close()
            arena.close()

    def test_loader_worker_crash_surfaces_traceback(self, tiny_dataset, tiny_split):
        loader = PrefetchLoader(tiny_split.train, tiny_dataset.schema,
                                batch_size=16, seed=1, num_workers=2,
                                negatives=2, dataset=tiny_dataset)
        # Sabotage the packed merged timeline so worker-side collate raises.
        data, indptr = loader.packed.merged_items
        loader.packed.merged_items = (data, indptr[:2])
        before = {p.pid for p in mp.active_children()}
        with pytest.raises(WorkerError):
            list(loader)
        loader.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leftover = {p.pid for p in mp.active_children()} - before
            if not leftover:
                break
            time.sleep(0.05)
        assert not leftover
