"""Tests for the synthetic multi-behavior generator."""

import numpy as np
import pytest

from repro.data import (SyntheticConfig, TAOBAO_SCHEMA, generate, taobao_like, tmall_like,
                        yelp_like)

SMALL = SyntheticConfig(num_users=40, num_items=100, num_interests=4,
                        interests_per_user=2, min_target_events=3, name="small")


class TestGeneration:
    def test_deterministic_under_seed(self):
        a = generate(SMALL, seed=3)
        b = generate(SMALL, seed=3)
        assert [e for e in a.interactions()] == [e for e in b.interactions()]

    def test_different_seeds_differ(self):
        a = generate(SMALL, seed=3)
        b = generate(SMALL, seed=4)
        assert a.interactions() != b.interactions()

    def test_every_user_has_min_target_events(self):
        ds = generate(SMALL, seed=0)
        target = ds.schema.target
        for user in ds.users:
            assert len(ds.sequence(user, target)) >= SMALL.min_target_events

    def test_all_users_present(self):
        ds = generate(SMALL, seed=0)
        assert ds.num_users == SMALL.num_users

    def test_item_ids_in_range(self):
        ds = generate(SMALL, seed=1)
        for event in ds.interactions():
            assert 1 <= event.item <= SMALL.num_items

    def test_cluster_ground_truth_attached(self):
        ds = generate(SMALL, seed=1)
        clusters = ds.item_clusters
        assert clusters.shape == (SMALL.num_items,)
        assert set(np.unique(clusters)) <= set(range(SMALL.num_interests))


class TestFunnelStructure:
    def test_views_dominate(self):
        ds = generate(SMALL, seed=2)
        stats = ds.stats().interactions_per_behavior
        assert stats["view"] > stats["cart"] > stats["fav"]

    def test_funnel_events_follow_views(self):
        """Every cart event's item was viewed at the immediately preceding tick."""
        ds = generate(SMALL, seed=2)
        for user in ds.users[:10]:
            views = dict()
            for item, ts in ds.sequence_with_times(user, "view"):
                views[ts] = item
            for item, ts in ds.sequence_with_times(user, "cart"):
                assert views.get(ts - 1) == item

    def test_most_buys_previously_viewed(self):
        """The funnel implies a large share of purchases were seen before."""
        ds = generate(SMALL, seed=2)
        seen_before = 0
        total = 0
        for user in ds.users:
            viewed = set()
            merged = ds.merged_sequence(user)
            for item, behavior, ts in merged:
                if behavior == "buy":
                    total += 1
                    seen_before += item in viewed
                elif behavior == "view":
                    viewed.add(item)
        assert seen_before / total > 0.4


class TestConfigValidation:
    def test_bad_interests(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_interests=0)

    def test_interests_per_user_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_interests=3, interests_per_user=5)

    def test_noise_rate_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(noise_rate=1.5)

    def test_funnel_stage_must_exist(self):
        with pytest.raises(ValueError):
            SyntheticConfig(funnel={"wishlist": 0.5})


class TestPresets:
    @pytest.mark.parametrize("factory", [taobao_like, tmall_like, yelp_like])
    def test_presets_scale(self, factory):
        small = factory(0.5)
        big = factory(1.0)
        assert small.num_users < big.num_users
        assert small.num_items < big.num_items

    def test_preset_schemas(self):
        assert taobao_like().schema.target == "buy"
        assert yelp_like().schema.target == "tip"

    @pytest.mark.parametrize("factory", [taobao_like, tmall_like, yelp_like])
    def test_presets_generate(self, factory):
        ds = generate(factory(0.1), seed=0)
        assert ds.num_interactions > 0
