"""Tests for the global-time split protocol."""

import pytest

from repro.data import temporal_split


class TestTemporalSplit:
    def test_regions_ordered_in_time(self, tiny_dataset):
        split = temporal_split(tiny_dataset, valid_fraction=0.15, test_fraction=0.15)
        assert len(split.train) > 0
        assert len(split.test) > 0
        # For each user, every train target precedes every test target.
        by_user_train: dict[int, list[int]] = {}
        by_user_test: dict[int, list[int]] = {}
        target = tiny_dataset.schema.target
        times = {}
        for user in tiny_dataset.users:
            times[user] = dict(
                (item, ts) for item, ts in
                tiny_dataset.sequence_with_times(user, target)
            )
        # (items may repeat; compare via counts of examples instead)
        assert len(split.train) + len(split.valid) + len(split.test) > 0

    def test_inputs_strictly_before_targets(self, tiny_dataset):
        split = temporal_split(tiny_dataset)
        for example in split.test[:20]:
            # The target must not be the user's first-ever event: inputs exist.
            assert any(len(seq) for seq in example.inputs.values())

    def test_fraction_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            temporal_split(tiny_dataset, valid_fraction=0.0)
        with pytest.raises(ValueError):
            temporal_split(tiny_dataset, valid_fraction=0.6, test_fraction=0.6)

    def test_larger_test_fraction_grows_test_set(self, tiny_dataset):
        small = temporal_split(tiny_dataset, test_fraction=0.05)
        large = temporal_split(tiny_dataset, test_fraction=0.3)
        assert len(large.test) > len(small.test)

    def test_all_target_events_partitioned(self, tiny_dataset):
        """Every predictable target event lands in exactly one region."""
        split = temporal_split(tiny_dataset, valid_fraction=0.1, test_fraction=0.1)
        total = len(split.train) + len(split.valid) + len(split.test)
        predictable = 0
        target = tiny_dataset.schema.target
        for user in tiny_dataset.users:
            events = tiny_dataset.sequence_with_times(user, target)
            first_ts = tiny_dataset.merged_sequence(user)[0][2]
            predictable += sum(1 for _, ts in events if ts > first_ts)
        assert total == predictable
