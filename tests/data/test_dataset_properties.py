"""Property-based tests of the dataset container (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BehaviorSchema, Interaction, MultiBehaviorDataset

SCHEMA = BehaviorSchema(behaviors=("view", "buy"), target="buy")

interactions_strategy = st.lists(
    st.builds(
        Interaction,
        user=st.integers(0, 5),
        item=st.integers(1, 15),
        behavior=st.sampled_from(["view", "buy"]),
        timestamp=st.integers(0, 100),
    ),
    min_size=1, max_size=60,
)


@given(events=interactions_strategy)
@settings(max_examples=50, deadline=None)
def test_dataset_invariants(events):
    dataset = MultiBehaviorDataset(events, SCHEMA, num_items=15)

    # (1) Interaction count preserved.
    assert dataset.num_interactions == len(events)

    # (2) Per-behavior sequences are chronologically sorted.
    for user in dataset.users:
        for behavior in SCHEMA.behaviors:
            times = [ts for _, ts in dataset.sequence_with_times(user, behavior)]
            assert times == sorted(times)

    # (3) The merged timeline is sorted and contains every event of the user.
    for user in dataset.users:
        merged = dataset.merged_sequence(user)
        times = [ts for _, _, ts in merged]
        assert times == sorted(times)
        per_behavior_total = sum(len(dataset.sequence(user, b))
                                 for b in SCHEMA.behaviors)
        assert len(merged) == per_behavior_total

    # (4) items_of_user covers exactly the user's items.
    for user in dataset.users:
        expected = {e.item for e in events if e.user == user}
        assert dataset.items_of_user(user) == expected

    # (5) Popularity sums to the interaction count; padding stays zero.
    popularity = dataset.item_popularity()
    assert popularity.sum() == len(events)
    assert popularity[0] == 0

    # (6) Stats are internally consistent.
    stats = dataset.stats()
    assert sum(stats.interactions_per_behavior.values()) == len(events)
    assert 0.0 <= stats.density <= 1.0


@given(events=interactions_strategy, keep=st.sampled_from([("buy",), ("view", "buy")]))
@settings(max_examples=30, deadline=None)
def test_restrict_behaviors_property(events, keep):
    dataset = MultiBehaviorDataset(events, SCHEMA, num_items=15)
    restricted = dataset.restrict_behaviors(keep)
    assert set(restricted.schema.behaviors) == set(keep)
    expected = sum(1 for e in events if e.behavior in keep)
    assert restricted.num_interactions == expected
