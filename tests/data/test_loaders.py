"""Tests for the CSV/TSV interaction loaders."""

import pytest

from repro.data import (BehaviorSchema, TAOBAO_SCHEMA, load_interaction_csv,
                        load_user_behavior_csv)

SCHEMA = BehaviorSchema(behaviors=("view", "buy"), target="buy")


class TestInteractionCSV:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "user,item,behavior,timestamp\n"
            "u1,i1,view,100\n"
            "u1,i1,buy,101\n"
            "u2,i2,view,50\n"
        )
        ds = load_interaction_csv(path, SCHEMA)
        assert ds.num_users == 2
        assert ds.num_items == 2
        assert ds.num_interactions == 3
        # u1's buy follows the view chronologically.
        user0_merged = ds.merged_sequence(0)
        assert [b for _, b, _ in user0_merged] == ["view", "buy"]

    def test_column_mapping_and_delimiter(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text(
            "uid\tiid\taction\tts\n"
            "a\tx\tview\t1\n"
            "a\tx\tbuy\t2\n"
        )
        ds = load_interaction_csv(
            path, SCHEMA, delimiter="\t",
            columns={"user": "uid", "item": "iid", "behavior": "action",
                     "timestamp": "ts"},
        )
        assert ds.num_interactions == 2

    def test_behavior_map(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("user,item,behavior,timestamp\nu,i,pv,1\n")
        ds = load_interaction_csv(path, SCHEMA, behavior_map={"pv": "view"})
        assert ds.interactions()[0].behavior == "view"

    def test_strict_unknown_behavior_raises(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("user,item,behavior,timestamp\nu,i,wish,1\n")
        with pytest.raises(ValueError):
            load_interaction_csv(path, SCHEMA, strict=True)

    def test_lenient_skips_and_counts(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "user,item,behavior,timestamp\n"
            "u,i,wish,1\n"
            "u,i,buy,2\n"
        )
        ds = load_interaction_csv(path, SCHEMA, strict=False)
        assert ds.num_interactions == 1

    def test_missing_columns_reported(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("user,item\nu,i\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_interaction_csv(path, SCHEMA)

    def test_ids_remapped_densely(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(
            "user,item,behavior,timestamp\n"
            "u9,i77,buy,1\n"
            "u9,i99,buy,2\n"
        )
        ds = load_interaction_csv(path, SCHEMA)
        assert ds.users == [0]
        assert sorted({e.item for e in ds.interactions()}) == [1, 2]


class TestUserBehaviorCSV:
    def test_taobao_format(self, tmp_path):
        path = tmp_path / "ub.csv"
        path.write_text(
            "1,100,5000,pv,1511544070\n"
            "1,100,5000,cart,1511544090\n"
            "1,100,5000,buy,1511544100\n"
            "2,200,5001,fav,1511544050\n"
        )
        ds = load_user_behavior_csv(path, TAOBAO_SCHEMA)
        assert ds.num_users == 2
        stats = ds.stats().interactions_per_behavior
        assert stats == {"view": 1, "cart": 1, "fav": 1, "buy": 1}

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,100,pv\n")
        with pytest.raises(ValueError):
            load_user_behavior_csv(path, TAOBAO_SCHEMA)

    def test_unknown_codes_skipped(self, tmp_path):
        path = tmp_path / "ub.csv"
        path.write_text(
            "1,100,5000,pv,10\n"
            "1,100,5000,unknown_code,11\n"
        )
        ds = load_user_behavior_csv(path, TAOBAO_SCHEMA)
        assert ds.num_interactions == 1
