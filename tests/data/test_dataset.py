"""Tests for MultiBehaviorDataset."""

import numpy as np
import pytest

from repro.data import BehaviorSchema, Interaction, MultiBehaviorDataset


class TestConstruction:
    def test_sequences_chronological(self, toy_dataset):
        assert toy_dataset.sequence(0, "view") == [1, 2, 3]
        assert toy_dataset.sequence(0, "buy") == [1, 3, 2]

    def test_unknown_behavior_rejected(self):
        schema = BehaviorSchema(behaviors=("view", "buy"), target="buy")
        with pytest.raises(ValueError):
            MultiBehaviorDataset([Interaction(0, 1, "cart", 1)], schema, 5)

    def test_item_out_of_range_rejected(self):
        schema = BehaviorSchema(behaviors=("view", "buy"), target="buy")
        with pytest.raises(ValueError):
            MultiBehaviorDataset([Interaction(0, 9, "view", 1)], schema, 5)

    def test_counts(self, toy_dataset):
        assert toy_dataset.num_users == 3
        assert toy_dataset.num_interactions == 16


class TestViews:
    def test_merged_sequence_ordered_by_time(self, toy_dataset):
        merged = toy_dataset.merged_sequence(0)
        times = [ts for _, _, ts in merged]
        assert times == sorted(times)

    def test_merged_tie_break_follows_schema_order(self):
        schema = BehaviorSchema(behaviors=("view", "buy"), target="buy")
        events = [Interaction(0, 1, "buy", 5), Interaction(0, 2, "view", 5)]
        ds = MultiBehaviorDataset(events, schema, 5)
        behaviors = [b for _, b, _ in ds.merged_sequence(0)]
        assert behaviors == ["view", "buy"]

    def test_items_of_user(self, toy_dataset):
        assert toy_dataset.items_of_user(1) == {4, 5}

    def test_target_lengths(self, toy_dataset):
        assert toy_dataset.target_lengths() == {0: 3, 1: 3, 2: 3}

    def test_item_popularity_pads_zero(self, toy_dataset):
        pop = toy_dataset.item_popularity()
        assert pop[0] == 0
        assert pop.sum() == toy_dataset.num_interactions


class TestStats:
    def test_stats_totals(self, toy_dataset):
        stats = toy_dataset.stats()
        assert stats.num_users == 3
        assert sum(stats.interactions_per_behavior.values()) == stats.num_interactions
        assert 0 < stats.density <= 1.0

    def test_stats_row_render(self, toy_dataset):
        row = toy_dataset.stats().as_row()
        assert row[0] == "toy"


class TestRestrictBehaviors:
    def test_restrict_drops_events(self, toy_dataset):
        only_buy = toy_dataset.restrict_behaviors(["buy"])
        assert only_buy.schema.behaviors == ("buy",)
        assert all(e.behavior == "buy" for e in only_buy.interactions())

    def test_restrict_keeps_target_sequences(self, toy_dataset):
        only_buy = toy_dataset.restrict_behaviors(["buy"])
        assert only_buy.sequence(0, "buy") == toy_dataset.sequence(0, "buy")
