"""Tests for the shared-memory transport: arena round-trips, slot leasing,
payload codec parity, segment cleanup (including crashed readers), and the
versioned parameter mirror."""

import gc
import os
import signal

import multiprocessing as mp

import numpy as np
import pytest

from repro.data import collate
from repro.data.shm import (DEFAULT_MIN_SHM_BYTES, ShmArena, ShmBlock,
                            ShmParamMirror, decode_payload, encode_payload)


def _segment_path(name: str) -> str:
    return os.path.join("/dev/shm", name)


def _shm_visible(name: str) -> bool:
    return os.path.exists(_segment_path(name))


needs_dev_shm = pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                                   reason="no /dev/shm on this platform")


class TestShmArena:
    def test_write_open_round_trip(self):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal((64, 32)),
                  rng.integers(0, 1000, size=(128,), dtype=np.int64),
                  rng.random((7, 5)).astype(np.float32)]
        with ShmArena(slot_bytes=1 << 20, num_slots=2) as arena:
            block = arena.write(arrays)
            assert isinstance(block, ShmBlock)
            views = arena.open(block)
            assert len(views) == len(arrays)
            for view, original in zip(views, arrays):
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable

    def test_views_survive_arena_close(self):
        # Deferred unmap: closing the arena must not invalidate outstanding
        # zero-copy views (numpy does not pin the mmap, so an eager unmap
        # would segfault on the next read).
        with ShmArena(slot_bytes=1 << 16, num_slots=1) as arena:
            original = np.arange(4096, dtype=np.float64)
            views = arena.open(arena.write([original]))
        assert arena.closed
        np.testing.assert_array_equal(views[0], original)

    def test_slot_recycled_after_views_collected(self):
        with ShmArena(slot_bytes=1 << 16, num_slots=1) as arena:
            first = arena.write([np.zeros(512, dtype=np.float64)])
            assert first is not None
            views = arena.open(first)
            # The only slot is leased by the live view: the next write must
            # fall back rather than block forever.
            assert arena.write([np.ones(512)], timeout=0.05) is None
            del views
            gc.collect()
            again = arena.write([np.ones(512, dtype=np.float64)], timeout=5.0)
            assert again is not None
            np.testing.assert_array_equal(arena.open(again, copy=True)[0],
                                          np.ones(512))

    def test_copy_mode_releases_slot_immediately(self):
        with ShmArena(slot_bytes=1 << 16, num_slots=1) as arena:
            payload = np.arange(256, dtype=np.int64)
            copies = arena.open(arena.write([payload]), copy=True)
            np.testing.assert_array_equal(copies[0], payload)
            assert copies[0].flags.writeable
            # Slot is free again without any GC ceremony.
            assert arena.write([payload], timeout=5.0) is not None

    def test_oversize_payload_refused(self):
        with ShmArena(slot_bytes=1 << 12, num_slots=2) as arena:
            assert arena.write([np.zeros(1 << 14, dtype=np.float64)]) is None

    @needs_dev_shm
    def test_segment_unlinked_on_close(self):
        arena = ShmArena(slot_bytes=1 << 12, num_slots=1)
        name = arena.name
        assert _shm_visible(name)
        arena.close()
        assert not _shm_visible(name)
        arena.close()  # idempotent

    @needs_dev_shm
    def test_segment_unlinked_after_reader_killed(self):
        # A reader that dies holding views must not leak the segment or
        # poison the parent's mapping.
        arena = ShmArena(slot_bytes=1 << 16, num_slots=2)
        payload = np.arange(1024, dtype=np.float64)
        block = arena.write([payload])
        assert block is not None

        def read_then_die():
            views = arena.open(block)
            assert views[0][10] == 10.0
            os.kill(os.getpid(), signal.SIGKILL)

        child = mp.get_context("fork").Process(target=read_then_die)
        child.start()
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL
        # Parent still owns a healthy segment and can read the data.
        np.testing.assert_array_equal(arena.open(block, copy=True)[0], payload)
        name = arena.name
        arena.close()
        assert not _shm_visible(name)


class TestPayloadCodec:
    def test_batch_dataclass_round_trip(self, tiny_dataset, tiny_split):
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        with ShmArena(slot_bytes=1 << 20, num_slots=2) as arena:
            tagged = encode_payload(batch, arena, min_bytes=1)
            assert tagged[0] == "shm"
            decoded, shm_bytes = decode_payload(tagged, arena, copy=True)
            assert shm_bytes > 0
        assert (decoded.users == batch.users).all()
        assert (decoded.targets == batch.targets).all()
        for behavior in batch.items:
            assert (decoded.items[behavior] == batch.items[behavior]).all()
            assert (decoded.masks[behavior] == batch.masks[behavior]).all()
        assert (decoded.merged_items == batch.merged_items).all()
        assert (decoded.merged_behaviors == batch.merged_behaviors).all()
        assert (decoded.merged_mask == batch.merged_mask).all()

    def test_nested_structure_preserved(self):
        big = np.arange(4096, dtype=np.float64)
        payload = {"big": big, "meta": {"count": 3, "names": ["a", "b"]},
                   "pair": (big * 2, "label")}
        with ShmArena(slot_bytes=1 << 20, num_slots=2) as arena:
            tagged = encode_payload(payload, arena, min_bytes=1)
            assert tagged[0] == "shm"
            decoded, _ = decode_payload(tagged, arena, copy=False)
            np.testing.assert_array_equal(decoded["big"], big)
            np.testing.assert_array_equal(decoded["pair"][0], big * 2)
            assert decoded["meta"] == {"count": 3, "names": ["a", "b"]}
            assert decoded["pair"][1] == "label"

    def test_small_arrays_stay_raw(self):
        tiny = np.arange(8, dtype=np.int64)  # far below DEFAULT_MIN_SHM_BYTES
        assert tiny.nbytes < DEFAULT_MIN_SHM_BYTES
        with ShmArena(slot_bytes=1 << 12, num_slots=1) as arena:
            tagged = encode_payload({"x": tiny}, arena)
            assert tagged[0] == "raw"
            decoded, shm_bytes = decode_payload(tagged, arena)
            assert shm_bytes == 0
            np.testing.assert_array_equal(decoded["x"], tiny)

    def test_fallback_when_arena_full(self):
        big = np.zeros(1 << 12, dtype=np.float64)
        with ShmArena(slot_bytes=1 << 16, num_slots=1) as arena:
            held = arena.open(arena.write([big]))
            tagged = encode_payload({"x": big}, arena, min_bytes=1,
                                    timeout=0.05)
            assert tagged[0] == "raw"
            decoded, shm_bytes = decode_payload(tagged, arena)
            assert shm_bytes == 0
            np.testing.assert_array_equal(decoded["x"], big)
            del held

    def test_closed_arena_encodes_raw(self):
        arena = ShmArena(slot_bytes=1 << 12, num_slots=1)
        arena.close()
        tagged = encode_payload({"x": np.zeros(4096)}, arena, min_bytes=1)
        assert tagged[0] == "raw"


class TestShmParamMirror:
    def test_publish_refresh_cycle(self):
        with ShmParamMirror(count=64, dtype=np.float64) as mirror:
            out = np.zeros(64, dtype=np.float64)
            assert mirror.version == 0
            assert not mirror.refresh(out)  # nothing published yet... but
            first = np.arange(64, dtype=np.float64)
            assert mirror.publish(first) == 1
            # A fresh consumer state would see it; this process's _seen is
            # still 0, so refresh picks it up exactly once.
            assert mirror.refresh(out)
            np.testing.assert_array_equal(out, first)
            assert not mirror.refresh(out)  # no new version
            mirror.data[...] = 7.0
            assert mirror.publish() == 2  # bump without values
            assert mirror.refresh(out)
            np.testing.assert_array_equal(out, np.full(64, 7.0))

    @needs_dev_shm
    def test_mirror_unlinked_on_close(self):
        mirror = ShmParamMirror(count=16)
        name = mirror.name
        assert _shm_visible(name)
        mirror.close()
        assert not _shm_visible(name)
        mirror.close()  # idempotent

    def test_refresh_across_fork(self):
        with ShmParamMirror(count=32, dtype=np.float32) as mirror:
            mirror.publish(np.full(32, 3.0, dtype=np.float32))
            parent, child = mp.get_context("fork").Pipe()

            def report():
                buffer = np.zeros(32, dtype=np.float32)
                updated = mirror.refresh(buffer)
                child.send((updated, float(buffer[0])))
                child.close()

            worker = mp.get_context("fork").Process(target=report)
            worker.start()
            updated, value = parent.recv()
            worker.join(timeout=30)
            assert updated and value == 3.0
