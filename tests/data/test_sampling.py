"""Tests for negative sampling."""

import numpy as np
import pytest

from repro.data import NegativeSampler, leave_one_out_split


class TestNegativeSampler:
    def test_negatives_never_interacted(self, tiny_dataset, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        for user in tiny_dataset.users[:10]:
            negatives = sampler.sample(user, 20)
            assert len(negatives) == 20
            assert len(set(negatives.tolist())) == 20
            assert not (set(negatives.tolist()) & tiny_dataset.items_of_user(user))

    def test_explicit_exclusion(self, tiny_dataset, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        user = tiny_dataset.users[0]
        forbidden = set(range(1, 50))
        negatives = sampler.sample(user, 10, exclude=forbidden)
        assert not (set(negatives.tolist()) & forbidden)

    def test_too_many_negatives_raises(self, toy_dataset, rng):
        sampler = NegativeSampler(toy_dataset, rng)
        with pytest.raises(ValueError):
            sampler.sample(0, 100)

    def test_popularity_mode_prefers_popular(self, tiny_dataset, rng):
        sampler = NegativeSampler(tiny_dataset, rng, mode="popularity")
        popularity = tiny_dataset.item_popularity()
        draws = np.concatenate([
            sampler.sample(tiny_dataset.users[0], 20) for _ in range(20)
        ])
        drawn_pop = popularity[draws].mean()
        uniform = NegativeSampler(tiny_dataset, np.random.default_rng(0))
        uniform_draws = np.concatenate([
            uniform.sample(tiny_dataset.users[0], 20) for _ in range(20)
        ])
        assert drawn_pop > popularity[uniform_draws].mean()

    def test_unknown_mode_rejected(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            NegativeSampler(tiny_dataset, rng, mode="hard")

    def test_candidates_for_puts_positive_first(self, tiny_dataset, rng):
        split = leave_one_out_split(tiny_dataset)
        sampler = NegativeSampler(tiny_dataset, rng)
        example = split.test[0]
        candidates = sampler.candidates_for(example, num_negatives=50)
        assert candidates[0] == example.target
        assert len(candidates) == 51
        assert example.target not in candidates[1:]

    def test_unseen_user_has_empty_exclusion(self, tiny_dataset, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        assert sampler.user_items(10_000) == set()
