"""Integration tests of the alternative pipeline configurations.

Covers the end-to-end paths that the main integration suite doesn't: the
temporal split protocol, full-catalog evaluation of a trained model, the
routing-mode MISSL, and CL4SRec with the extended augmentation pool.
"""

import numpy as np
import pytest

from repro.baselines import CL4SRec
from repro.core import MISSL, MISSLConfig, build_substitution_table
from repro.data import (NegativeSampler, SyntheticConfig, generate, k_core_filter,
                        temporal_split)
from repro.eval import CandidateSets, evaluate_full_ranking, evaluate_ranking
from repro.hypergraph import build_hypergraph
from repro.train import TrainConfig, Trainer

CORPUS = SyntheticConfig(num_users=60, num_items=130, num_interests=4,
                         interests_per_user=2, sessions_per_user=6.0,
                         target_per_session=0.7, min_target_events=4,
                         name="variants")


@pytest.fixture(scope="module")
def dataset():
    return k_core_filter(generate(CORPUS, seed=3))


class TestTemporalSplitPipeline:
    def test_train_eval_cycle(self, dataset):
        split = temporal_split(dataset, valid_fraction=0.15, test_fraction=0.15,
                               max_len=20)
        assert split.summary()["train"] > 0 and split.summary()["test"] > 0
        graph = build_hypergraph(dataset)
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(dataset.num_items, dataset.schema, graph, config, seed=0)
        history = Trainer(model, split,
                          TrainConfig(epochs=3, patience=3, num_eval_negatives=30,
                                      seed=0)).fit()
        assert history.num_epochs >= 1
        candidates = CandidateSets(dataset, split.test, 30, seed=5)
        report = evaluate_ranking(model, split.test, candidates, dataset.schema)
        assert np.isfinite(report["NDCG@10"])


class TestFullRankingOfTrainedModel:
    def test_full_vs_sampled_consistency(self, dataset):
        from repro.data import leave_one_out_split
        split = leave_one_out_split(dataset, max_len=20)
        graph = build_hypergraph(dataset)
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(dataset.num_items, dataset.schema, graph, config, seed=0)
        Trainer(model, split, TrainConfig(epochs=4, patience=4,
                                          num_eval_negatives=30, seed=0)).fit()
        sampled = evaluate_ranking(model, split.test,
                                   CandidateSets(dataset, split.test, 30, seed=1),
                                   dataset.schema)
        full = evaluate_full_ranking(model, dataset, split.test, ks=(10,))
        # Full ranking is the harder protocol.
        assert full["HR@10"] <= sampled["HR@10"] + 1e-9
        # But a trained model still beats chance (random HR@10 on the full
        # catalog would be ~10/num_items).
        assert full["HR@10"] > 3 * 10.0 / dataset.num_items


class TestRoutingModePipeline:
    def test_routing_missl_learns(self, dataset):
        from repro.data import leave_one_out_split
        split = leave_one_out_split(dataset, max_len=20)
        graph = build_hypergraph(dataset)
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             interest_mode="routing", num_train_negatives=8,
                             lambda_aug=0.0, lambda_disent=0.0)
        model = MISSL(dataset.num_items, dataset.schema, graph, config, seed=0)
        history = Trainer(model, split,
                          TrainConfig(epochs=4, patience=4, num_eval_negatives=30,
                                      seed=0)).fit()
        losses = history.train_losses()
        assert losses[-1] < losses[0]


class TestExtendedAugmentationPipeline:
    def test_cl4srec_with_substitution_table(self, dataset):
        from repro.data import collate, drop_holdout_targets, leave_one_out_split
        split = leave_one_out_split(dataset, max_len=20)
        similar = build_substitution_table(drop_holdout_targets(dataset, 2))
        model = CL4SRec(dataset.num_items, dataset.schema, dim=16, max_len=20,
                        seed=0, lambda_aug=0.5, similar=similar)
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        batch = collate(split.train[:24], dataset.schema)
        loss = model.training_loss(batch, sampler, num_negatives=8)
        loss.backward()
        assert np.isfinite(loss.item())
