"""Tests for the self-supervised objectives and disentanglement."""

import numpy as np
import pytest

from repro.core import (augmentation_contrast, cross_behavior_interest_contrast,
                        interest_disentanglement, prototype_orthogonality)
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


class TestCrossBehaviorContrast:
    def test_aligned_beats_random(self, rng):
        target = Tensor(rng.normal(size=(8, 3, 6)))
        aligned = cross_behavior_interest_contrast(target, [target], 0.3).item()
        random_aux = Tensor(rng.normal(size=(8, 3, 6)))
        shuffled = cross_behavior_interest_contrast(target, [random_aux], 0.3).item()
        assert aligned < shuffled

    def test_shape_mismatch_raises(self, rng):
        target = Tensor(rng.normal(size=(4, 2, 6)))
        bad = Tensor(rng.normal(size=(4, 3, 6)))
        with pytest.raises(ValueError):
            cross_behavior_interest_contrast(target, [bad], 0.3)

    def test_invalid_users_filtered(self, rng):
        target = Tensor(rng.normal(size=(6, 2, 4)))
        aux = Tensor(rng.normal(size=(6, 2, 4)))
        valid = np.array([True, True, True, False, False, False])
        loss = cross_behavior_interest_contrast(target, [aux], 0.3, valid_users=valid)
        assert np.isfinite(loss.item())

    def test_too_few_valid_rows_zero(self, rng):
        target = Tensor(rng.normal(size=(4, 2, 4)))
        aux = Tensor(rng.normal(size=(4, 2, 4)))
        valid = np.array([True, False, False, False])
        loss = cross_behavior_interest_contrast(target, [aux], 0.3, valid_users=valid)
        assert loss.item() == 0.0

    def test_multiple_aux_views_averaged(self, rng):
        target = Tensor(rng.normal(size=(5, 2, 4)))
        a = Tensor(rng.normal(size=(5, 2, 4)))
        b = Tensor(rng.normal(size=(5, 2, 4)))
        la = cross_behavior_interest_contrast(target, [a], 0.3).item()
        lb = cross_behavior_interest_contrast(target, [b], 0.3).item()
        lab = cross_behavior_interest_contrast(target, [a, b], 0.3).item()
        assert lab == pytest.approx((la + lb) / 2, rel=1e-4)

    def test_gradient_flows(self, rng):
        target = Tensor(rng.normal(size=(4, 2, 4)), requires_grad=True)
        aux = Tensor(rng.normal(size=(4, 2, 4)), requires_grad=True)
        loss = cross_behavior_interest_contrast(target, [aux], 0.3)
        loss.backward()
        assert target.grad is not None and np.isfinite(target.grad).all()


class TestAugmentationContrast:
    def test_accepts_2d_and_3d(self, rng):
        a3 = Tensor(rng.normal(size=(6, 2, 4)))
        b3 = Tensor(rng.normal(size=(6, 2, 4)))
        assert np.isfinite(augmentation_contrast(a3, b3, 0.3).item())
        a2 = Tensor(rng.normal(size=(6, 4)))
        b2 = Tensor(rng.normal(size=(6, 4)))
        assert np.isfinite(augmentation_contrast(a2, b2, 0.3).item())

    def test_identical_views_low_loss(self, rng):
        a = Tensor(rng.normal(size=(6, 4)))
        same = augmentation_contrast(a, a, 0.1).item()
        different = augmentation_contrast(a, Tensor(rng.normal(size=(6, 4))), 0.1).item()
        assert same < different


class TestDisentanglement:
    def test_orthogonal_interests_zero(self):
        interests = Tensor(np.stack([np.eye(4)[None, :3, :][0]] * 2))  # (2, 3, 4)
        assert interest_disentanglement(interests).item() == pytest.approx(0.0, abs=1e-6)

    def test_collinear_interests_one(self):
        vec = np.ones((1, 1, 4))
        interests = Tensor(np.concatenate([vec, vec], axis=1))  # (1, 2, 4) same dir
        assert interest_disentanglement(interests).item() == pytest.approx(1.0, rel=1e-4)

    def test_single_interest_zero(self, rng):
        interests = Tensor(rng.normal(size=(3, 1, 4)))
        assert interest_disentanglement(interests).item() == 0.0

    def test_penalty_decreases_under_optimization(self, rng):
        from repro.nn import Adam
        interests = Parameter(rng.normal(size=(4, 3, 6)))
        opt = Adam([interests], lr=0.05)
        first = None
        for _ in range(50):
            opt.zero_grad()
            loss = interest_disentanglement(interests)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_prototype_orthogonality(self, rng):
        protos = Tensor(np.eye(4)[:3])
        assert prototype_orthogonality(protos).item() == pytest.approx(0.0, abs=1e-6)
        single = Tensor(rng.normal(size=(1, 4)))
        assert prototype_orthogonality(single).item() == 0.0
