"""Tests for the interest read-out modes (max vs label-aware softmax)."""

import numpy as np
import pytest

from repro.core import MISSL, MISSLConfig
from repro.core.base import SequentialRecommender
from repro.data import NegativeSampler, collate
from repro.nn.tensor import Tensor, no_grad


class Dummy(SequentialRecommender):
    pass


class TestInterestReadout:
    def test_max_mode(self, rng):
        model = Dummy()
        per_interest = Tensor(rng.normal(size=(4, 3, 7)))
        out = model.interest_readout(per_interest)
        assert np.allclose(out.numpy(), per_interest.numpy().max(axis=1), atol=1e-6)

    def test_softmax_mode_bounds(self, rng):
        model = Dummy()
        model.score_mode = "softmax"
        model.score_pow = 2.0
        per_interest = Tensor(rng.normal(size=(4, 3, 7)))
        out = model.interest_readout(per_interest).numpy()
        raw = per_interest.numpy()
        # Attention read-out lies between the min and max over interests.
        assert (out <= raw.max(axis=1) + 1e-5).all()
        assert (out >= raw.min(axis=1) - 1e-5).all()

    def test_softmax_sharpens_toward_max(self, rng):
        raw = rng.normal(size=(4, 3, 7))
        sharp, soft = Dummy(), Dummy()
        sharp.score_mode = soft.score_mode = "softmax"
        sharp.score_pow, soft.score_pow = 50.0, 0.01
        sharp_out = sharp.interest_readout(Tensor(raw)).numpy()
        soft_out = soft.interest_readout(Tensor(raw)).numpy()
        gap_sharp = np.abs(sharp_out - raw.max(axis=1)).mean()
        gap_soft = np.abs(soft_out - raw.max(axis=1)).mean()
        assert gap_sharp < gap_soft

    def test_unknown_mode_rejected(self, rng):
        model = Dummy()
        model.score_mode = "mean"
        with pytest.raises(ValueError):
            model.interest_readout(Tensor(rng.normal(size=(2, 2, 3))))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MISSLConfig(score_mode="mean")


class TestMISSLWithSoftmaxReadout:
    def test_trains_and_scores(self, tiny_dataset, tiny_graph, tiny_split, rng):
        config = MISSLConfig(dim=16, num_interests=3, max_len=20,
                             score_mode="softmax", score_pow=3.0,
                             num_train_negatives=8)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss = model.training_loss(batch, sampler)
        loss.backward()
        assert np.isfinite(loss.item())
        model.eval()
        with no_grad():
            scores = model.score_candidates(batch, np.tile(np.arange(1, 9), (16, 1)))
        assert np.isfinite(scores.numpy()).all()
