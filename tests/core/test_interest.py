"""Tests for the multi-interest extractor."""

import numpy as np
import pytest

from repro.core import MultiInterestExtractor
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestExtractor:
    def test_output_shape(self, rng):
        extractor = MultiInterestExtractor(8, 4, rng)
        states = Tensor(rng.normal(size=(3, 6, 8)))
        mask = np.ones((3, 6), dtype=bool)
        assert extractor(states, mask).shape == (3, 4, 8)

    def test_masked_positions_ignored(self, rng):
        extractor = MultiInterestExtractor(8, 3, rng)
        states = rng.normal(size=(1, 5, 8))
        mask = np.array([[False, False, True, True, True]])
        out1 = extractor(Tensor(states), mask).numpy()
        perturbed = states.copy()
        perturbed[0, 0] += 100.0
        out2 = extractor(Tensor(perturbed), mask).numpy()
        assert np.allclose(out1, out2, atol=1e-4)

    def test_empty_rows_finite(self, rng):
        extractor = MultiInterestExtractor(8, 3, rng)
        states = Tensor(rng.normal(size=(2, 4, 8)))
        mask = np.array([[False] * 4, [True] * 4])
        out = extractor(states, mask).numpy()
        assert np.all(np.isfinite(out))

    def test_attention_sums_to_one(self, rng):
        extractor = MultiInterestExtractor(8, 4, rng)
        states = Tensor(rng.normal(size=(2, 5, 8)))
        mask = np.ones((2, 5), dtype=bool)
        attn = extractor.attention_weights(states, mask)
        assert attn.shape == (2, 5, 4)
        assert np.allclose(attn.sum(axis=1), 1.0, atol=1e-5)

    def test_masked_attention_zero(self, rng):
        extractor = MultiInterestExtractor(8, 2, rng)
        states = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.array([[False, True, True, True]])
        attn = extractor.attention_weights(states, mask)
        assert np.allclose(attn[0, 0], 0.0, atol=1e-6)

    def test_interests_differ_across_slots(self, rng):
        """Random prototypes should induce distinct attention patterns."""
        extractor = MultiInterestExtractor(16, 4, rng)
        states = Tensor(rng.normal(size=(1, 10, 16)))
        mask = np.ones((1, 10), dtype=bool)
        out = extractor(states, mask).numpy()[0]
        gram = out @ out.T
        norms = np.sqrt(np.diag(gram))
        cosine = gram / np.outer(norms, norms)
        off_diag = cosine[~np.eye(4, dtype=bool)]
        assert (np.abs(off_diag) < 0.999).any()

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        extractor = MultiInterestExtractor(6, 2, rng)
        states = Tensor(rng.normal(size=(2, 4, 6)), requires_grad=True)
        mask = np.array([[1, 1, 1, 0], [1, 1, 1, 1]], dtype=bool)
        gradcheck(lambda s: extractor(s, mask), [states], atol=5e-4)
