"""Tests for the dynamic-routing interest extractor."""

import numpy as np
import pytest

from repro.core import DynamicRoutingExtractor, MISSL, MISSLConfig
from repro.data import NegativeSampler, collate
from repro.nn.tensor import Tensor


class TestDynamicRouting:
    def test_output_shape(self, rng):
        extractor = DynamicRoutingExtractor(8, 4, rng)
        states = Tensor(rng.normal(size=(3, 6, 8)))
        mask = np.ones((3, 6), dtype=bool)
        out = extractor(states, mask)
        assert out.shape == (3, 4, 8)

    def test_capsule_norm_below_one(self, rng):
        """Squash keeps every capsule's norm strictly below 1."""
        extractor = DynamicRoutingExtractor(8, 3, rng)
        states = Tensor(rng.normal(size=(2, 5, 8)) * 10)
        mask = np.ones((2, 5), dtype=bool)
        out = extractor(states, mask).numpy()
        norms = np.linalg.norm(out, axis=-1)
        assert (norms < 1.0).all()

    def test_masked_positions_ignored(self, rng):
        extractor = DynamicRoutingExtractor(8, 3, rng)
        states = rng.normal(size=(1, 5, 8))
        mask = np.array([[False, True, True, True, True]])
        out1 = extractor(Tensor(states), mask).numpy()
        perturbed = states.copy()
        perturbed[0, 0] += 100.0
        out2 = extractor(Tensor(perturbed), mask).numpy()
        assert np.allclose(out1, out2, atol=1e-4)

    def test_empty_rows_finite(self, rng):
        extractor = DynamicRoutingExtractor(8, 3, rng)
        states = Tensor(rng.normal(size=(2, 4, 8)))
        mask = np.array([[False] * 4, [True] * 4])
        out = extractor(states, mask).numpy()
        assert np.all(np.isfinite(out))

    def test_routing_weights_sum_to_one(self, rng):
        extractor = DynamicRoutingExtractor(8, 4, rng, iterations=2)
        states = Tensor(rng.normal(size=(2, 6, 8)))
        mask = np.ones((2, 6), dtype=bool)
        weights = extractor.attention_weights(states, mask)
        assert weights.shape == (2, 6, 4)
        assert np.allclose(weights.sum(axis=-1), 1.0, atol=1e-5)

    def test_gradients_flow(self, rng):
        extractor = DynamicRoutingExtractor(6, 2, rng)
        states = Tensor(rng.normal(size=(2, 4, 6)), requires_grad=True)
        mask = np.ones((2, 4), dtype=bool)
        extractor(states, mask).sum().backward()
        assert states.grad is not None
        assert np.isfinite(states.grad).all()
        assert extractor.bilinear.weight.grad is not None

    def test_invalid_iterations(self, rng):
        with pytest.raises(ValueError):
            DynamicRoutingExtractor(8, 2, rng, iterations=0)


class TestRoutingInsideMISSL:
    def test_missl_routing_mode_trains(self, tiny_dataset, tiny_graph, tiny_split, rng):
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             interest_mode="routing", num_train_negatives=8)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss = model.training_loss(batch, sampler)
        loss.backward()
        assert np.isfinite(loss.item())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MISSLConfig(interest_mode="kmeans")
