"""Property-based tests for sequence augmentations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import augment_sequences, crop_items, mask_items, reorder_items
from repro.data import PAD_ITEM, pad_sequences


def random_batch(rng, batch=4, max_len=10):
    sequences = [list(rng.integers(1, 50, size=rng.integers(1, max_len + 1)))
                 for _ in range(batch)]
    return pad_sequences(sequences, max_len)


class TestMask:
    def test_keeps_at_least_one(self, rng):
        items, mask = random_batch(rng)
        new_items, new_mask = mask_items(items, mask, prob=0.99, rng=rng)
        assert (new_mask.sum(axis=1) >= 1).all()

    def test_dropped_positions_padded(self, rng):
        items, mask = random_batch(rng)
        new_items, new_mask = mask_items(items, mask, prob=0.5, rng=rng)
        dropped = mask & ~new_mask
        assert (new_items[dropped] == PAD_ITEM).all()

    def test_inputs_untouched(self, rng):
        items, mask = random_batch(rng)
        before = items.copy()
        mask_items(items, mask, prob=0.5, rng=rng)
        assert np.array_equal(items, before)


class TestCrop:
    def test_result_contiguous_subsequence(self, rng):
        items, mask = random_batch(rng)
        new_items, new_mask = crop_items(items, mask, ratio=0.5, rng=rng)
        for row in range(items.shape[0]):
            original = items[row][mask[row]].tolist()
            cropped = new_items[row][new_mask[row]].tolist()
            assert len(cropped) >= 1
            # cropped must appear as a contiguous run inside original
            joined = ",".join(map(str, original))
            assert ",".join(map(str, cropped)) in joined

    def test_ratio_respected_approximately(self, rng):
        sequences = [list(range(1, 11))] * 4
        items, mask = pad_sequences(sequences, 10)
        new_items, new_mask = crop_items(items, mask, ratio=0.5, rng=rng)
        assert (new_mask.sum(axis=1) == 5).all()


class TestReorder:
    def test_multiset_preserved(self, rng):
        items, mask = random_batch(rng)
        new_items, new_mask = reorder_items(items, mask, ratio=0.5, rng=rng)
        for row in range(items.shape[0]):
            assert sorted(items[row][mask[row]]) == sorted(new_items[row][new_mask[row]])

    def test_mask_unchanged(self, rng):
        items, mask = random_batch(rng)
        _, new_mask = reorder_items(items, mask, ratio=0.5, rng=rng)
        assert np.array_equal(mask, new_mask)


class TestAugmentSequences:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_for_any_seed(self, seed):
        rng = np.random.default_rng(seed)
        items, mask = random_batch(rng)
        new_items, new_mask = augment_sequences(items, mask, rng)
        # (1) shape preserved
        assert new_items.shape == items.shape
        # (2) at least one valid event survives per non-empty row
        non_empty = mask.any(axis=1)
        assert (new_mask[non_empty].sum(axis=1) >= 1).all()
        # (3) all surviving items existed in the original row
        for row in range(items.shape[0]):
            original = set(items[row][mask[row]].tolist())
            survivors = set(new_items[row][new_mask[row]].tolist())
            assert survivors <= original
        # (4) padded positions carry PAD_ITEM
        assert (new_items[~new_mask] == PAD_ITEM).all()

    def test_views_differ_usually(self, rng):
        items, mask = random_batch(rng, batch=16, max_len=12)
        view_a, _ = augment_sequences(items, mask, rng)
        view_b, _ = augment_sequences(items, mask, rng)
        assert not np.array_equal(view_a, view_b)
