"""Tests for the extension augmentation operators (substitute, insert)."""

import numpy as np
import pytest

from repro.core import (augment_sequences, build_substitution_table, insert_items,
                        substitute_items)
from repro.data import PAD_ITEM, pad_sequences


class TestSubstitute:
    def test_replaces_with_table_entries(self, rng):
        items, mask = pad_sequences([[1, 2, 3]], 4)
        similar = np.array([0, 10, 20, 30])
        new_items, new_mask = substitute_items(items, mask, prob=1.0, rng=rng,
                                               similar=similar)
        assert new_items[0, -3:].tolist() == [10, 20, 30]
        assert np.array_equal(mask, new_mask)

    def test_unknown_substitutes_left_alone(self, rng):
        items, mask = pad_sequences([[1, 2]], 3)
        similar = np.array([0, 0, 9])  # item 1 has no known substitute
        new_items, _ = substitute_items(items, mask, prob=1.0, rng=rng,
                                        similar=similar)
        assert new_items[0, -2:].tolist() == [1, 9]

    def test_prob_zero_identity(self, rng):
        items, mask = pad_sequences([[1, 2, 3]], 4)
        similar = np.array([0, 10, 20, 30])
        new_items, _ = substitute_items(items, mask, prob=0.0, rng=rng,
                                        similar=similar)
        assert np.array_equal(new_items, items)

    def test_padding_untouched(self, rng):
        items, mask = pad_sequences([[5]], 3)
        similar = np.zeros(10, dtype=np.int64)
        new_items, _ = substitute_items(items, mask, prob=1.0, rng=rng,
                                        similar=similar)
        assert (new_items[0, :2] == PAD_ITEM).all()


class TestInsert:
    def test_duplicates_increase_length(self, rng):
        items, mask = pad_sequences([[1, 2]], 6)
        new_items, new_mask = insert_items(items, mask, prob=1.0, rng=rng)
        assert new_mask[0].sum() == 4
        assert new_items[0][new_mask[0]].tolist() == [1, 1, 2, 2]

    def test_overflow_drops_oldest(self, rng):
        items, mask = pad_sequences([[1, 2, 3]], 3)
        new_items, new_mask = insert_items(items, mask, prob=1.0, rng=rng)
        # Doubled sequence [1,1,2,2,3,3] truncated to the 3 most recent.
        assert new_items[0].tolist() == [2, 3, 3]
        assert new_mask[0].all()

    def test_multiset_is_superset(self, rng):
        items, mask = pad_sequences([[4, 5, 6, 7]], 10)
        new_items, new_mask = insert_items(items, mask, prob=0.5, rng=rng)
        survivors = set(new_items[0][new_mask[0]].tolist())
        assert survivors <= {4, 5, 6, 7}

    def test_empty_rows_untouched(self, rng):
        items, mask = pad_sequences([[]], 3)
        new_items, new_mask = insert_items(items, mask, prob=1.0, rng=rng)
        assert not new_mask.any()


class TestSubstitutionTable:
    def test_most_cooccurring_selected(self, toy_dataset):
        table = build_substitution_table(toy_dataset)
        assert table.shape == (toy_dataset.num_items + 1,)
        assert table[0] == 0
        # Items 1 and 2 are both touched by users 0 and 2 → mutual top partners.
        assert table[1] in (2, 3)
        assert table[table > 0].min() >= 1

    def test_no_self_substitution(self, toy_dataset):
        table = build_substitution_table(toy_dataset)
        for item, substitute in enumerate(table):
            assert substitute != item or substitute == 0


class TestExtendedPool:
    def test_similar_table_extends_operator_pool(self, rng):
        items, mask = pad_sequences([[1, 2, 3]] * 32, 6)
        similar = np.arange(10) % 3 + 1
        new_items, new_mask = augment_sequences(items, mask, rng, similar=similar)
        assert new_items.shape == items.shape
        non_empty = mask.any(axis=1)
        assert (new_mask[non_empty].sum(axis=1) >= 1).all()
