"""Tests for MISSLConfig validation and ablation."""

import pytest

from repro.core import MISSLConfig


class TestValidation:
    def test_defaults_valid(self):
        config = MISSLConfig()
        assert config.num_interests >= 1

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MISSLConfig(dim=30, num_heads=4)

    def test_positive_temperature(self):
        with pytest.raises(ValueError):
            MISSLConfig(temperature=0.0)

    def test_nonnegative_lambdas(self):
        with pytest.raises(ValueError):
            MISSLConfig(lambda_ssl=-0.1)

    def test_at_least_one_interest(self):
        with pytest.raises(ValueError):
            MISSLConfig(num_interests=0)


class TestAblate:
    def test_ablate_returns_copy(self):
        base = MISSLConfig()
        variant = base.ablate(lambda_ssl=0.0)
        assert variant.lambda_ssl == 0.0
        assert base.lambda_ssl != 0.0

    def test_ablate_validates(self):
        with pytest.raises(ValueError):
            MISSLConfig().ablate(num_interests=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            MISSLConfig().dim = 64
