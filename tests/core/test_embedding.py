"""Tests for the behavior-aware sequence embedding."""

import numpy as np
import pytest

from repro.core import SequenceEmbedding
from repro.data import TAOBAO_SCHEMA
from repro.nn.layers import Embedding
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def embedding(rng):
    return SequenceEmbedding(dim=8, max_len=10, schema=TAOBAO_SCHEMA, rng=rng,
                             dropout=0.0)


@pytest.fixture
def table(rng):
    return Tensor(rng.normal(size=(20, 8)))


class TestSequenceEmbedding:
    def test_output_shape(self, embedding, table):
        out = embedding(table, np.array([[1, 2, 3], [4, 5, 6]]), "view")
        assert out.shape == (2, 3, 8)

    def test_right_aligned_positions(self, embedding, table):
        """The most recent event gets the same position id regardless of the
        batch's padded length — scores must not depend on batch composition."""
        embedding.eval()
        with no_grad():
            short = embedding(table, np.array([[3, 7]]), "buy").numpy()
            padded = embedding(table, np.array([[0, 0, 3, 7]]), "buy").numpy()
        assert np.allclose(short[0, -1], padded[0, -1], atol=1e-5)
        assert np.allclose(short[0, -2], padded[0, -2], atol=1e-5)

    def test_behavior_name_vs_id_matrix(self, embedding, table):
        embedding.eval()
        items = np.array([[1, 2]])
        with no_grad():
            by_name = embedding(table, items, "cart").numpy()
            ids = np.full((1, 2), TAOBAO_SCHEMA.behavior_id("cart"))
            by_ids = embedding(table, items, ids).numpy()
        assert np.allclose(by_name, by_ids)

    def test_behaviors_change_representation(self, embedding, table):
        embedding.eval()
        items = np.array([[1, 2]])
        with no_grad():
            view = embedding(table, items, "view").numpy()
            buy = embedding(table, items, "buy").numpy()
        assert not np.allclose(view, buy, atol=1e-3)

    def test_too_long_sequence_rejected(self, embedding, table):
        with pytest.raises(ValueError):
            embedding(table, np.zeros((1, 11), dtype=int), "view")

    def test_gradient_reaches_table(self, embedding, rng):
        table = Tensor(rng.normal(size=(20, 8)), requires_grad=True)
        out = embedding(table, np.array([[1, 2, 3]]), "view")
        # A plain .sum() of LayerNorm output has ~zero input gradient (the
        # mean direction is annihilated), so probe with random weights.
        weights = Tensor(rng.normal(size=(1, 3, 8)))
        (out * weights).sum().backward()
        assert table.grad is not None
        assert np.abs(table.grad[1:4]).sum() > 0.01
        assert np.allclose(table.grad[5:], 0.0)  # untouched rows get nothing
