"""Tests for the assembled MISSL model."""

import numpy as np
import pytest

from repro.core import MISSL, MISSLConfig
from repro.data import BatchLoader, NegativeSampler, collate
from repro.nn import Adam
from repro.nn.tensor import no_grad

CONFIG = MISSLConfig(dim=16, num_interests=3, max_len=20, num_train_negatives=10)


@pytest.fixture
def model(tiny_dataset, tiny_graph):
    return MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph, CONFIG, seed=0)


@pytest.fixture
def batch(tiny_dataset, tiny_split):
    return collate(tiny_split.test[:8], tiny_dataset.schema)


class TestForward:
    def test_user_representation_shape(self, model, batch):
        users = model.user_representation(batch)
        assert users.shape == (8, CONFIG.num_interests, CONFIG.dim)

    def test_score_candidates_shape(self, model, batch, rng):
        candidates = rng.integers(1, model.num_items + 1, size=(8, 12))
        scores = model.score_candidates(batch, candidates)
        assert scores.shape == (8, 12)
        assert np.isfinite(scores.numpy()).all()

    def test_behavior_interests_keys(self, model, batch, tiny_dataset):
        interests = model.behavior_interests(batch)
        for behavior in tiny_dataset.schema.behaviors:
            assert behavior in interests
        assert MISSL.FUSED_KEY in interests

    def test_item_table_enhanced_by_hypergraph(self, model):
        raw = model.item_embedding.weight.numpy()
        enhanced = model.item_representations().numpy()
        assert enhanced.shape == raw.shape
        assert not np.allclose(enhanced[1:], raw[1:], atol=1e-4)

    def test_eval_table_cache_and_invalidation(self, model):
        model.eval()
        with no_grad():
            first = model.item_representations()
            second = model.item_representations()
        assert first is second  # cached
        model.train()
        assert model._table_cache is None

    def test_requires_graph_when_enabled(self, tiny_dataset):
        with pytest.raises(ValueError):
            MISSL(tiny_dataset.num_items, tiny_dataset.schema, None, CONFIG, seed=0)


class TestAblationVariants:
    @pytest.mark.parametrize("overrides", [
        {"use_hypergraph": False},
        {"num_interests": 1},
        {"lambda_ssl": 0.0},
        {"lambda_aug": 0.0},
        {"lambda_disent": 0.0},
        {"use_auxiliary": False, "lambda_ssl": 0.0},
        {"use_shared_fusion": False},
    ])
    def test_variant_trains_one_step(self, tiny_dataset, tiny_graph, tiny_split, rng,
                                     overrides):
        config = CONFIG.ablate(**overrides)
        graph = tiny_graph if config.use_hypergraph else None
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, graph, config, seed=0)
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss = model.training_loss(batch, sampler)
        loss.backward()
        assert np.isfinite(loss.item())

    def test_no_auxiliary_ignores_aux_streams(self, tiny_dataset, tiny_graph, tiny_split):
        """With use_auxiliary=False, perturbing the view sequence must not
        change scores."""
        config = CONFIG.ablate(use_auxiliary=False, lambda_ssl=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph, config,
                      seed=0)
        model.eval()
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = np.tile(np.arange(1, 11), (4, 1))
        with no_grad():
            scores1 = model.score_candidates(batch, candidates).numpy()
            batch.items["view"][:] = 1
            scores2 = model.score_candidates(batch, candidates).numpy()
        assert np.allclose(scores1, scores2, atol=1e-5)


class TestTraining:
    def test_loss_breakdown_components(self, model, tiny_dataset, tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss, breakdown = model.training_loss(batch, sampler, return_breakdown=True)
        assert {"main", "ssl", "aug", "disent", "total"} <= set(breakdown)
        assert breakdown["total"] == pytest.approx(loss.item(), rel=1e-4)
        parts = breakdown["main"] + breakdown["ssl"] + breakdown["aug"] \
            + breakdown["disent"]
        assert parts == pytest.approx(breakdown["total"], rel=1e-3)

    def test_loss_decreases_over_steps(self, model, tiny_dataset, tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        loader = BatchLoader(tiny_split.train, tiny_dataset.schema, 32, rng=rng)
        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(6):
            for batch in loader:
                opt.zero_grad()
                loss = model.training_loss(batch, sampler)
                loss.backward()
                opt.step()
                losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_gradients_reach_all_parameters(self, model, tiny_dataset, tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss = model.training_loss(batch, sampler)
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        # Every parameter except (possibly) unused behavior-type rows gets grad.
        assert missing == []

    def test_seed_reproducibility(self, tiny_dataset, tiny_graph, tiny_split, rng):
        outs = []
        for _ in range(2):
            model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                          CONFIG, seed=11)
            model.eval()
            batch = collate(tiny_split.test[:4], tiny_dataset.schema)
            candidates = np.tile(np.arange(1, 11), (4, 1))
            with no_grad():
                outs.append(model.score_candidates(batch, candidates).numpy())
        assert np.allclose(outs[0], outs[1])

    def test_state_dict_roundtrip_preserves_scores(self, model, batch, rng):
        candidates = rng.integers(1, model.num_items + 1, size=(8, 5))
        model.eval()
        with no_grad():
            before = model.score_candidates(batch, candidates).numpy()
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        model.train()
        model.eval()
        with no_grad():
            after = model.score_candidates(batch, candidates).numpy()
        assert np.allclose(before, after, atol=1e-5)


class TestDedicatedPrototypes:
    def test_variant_trains(self, tiny_dataset, tiny_graph, tiny_split, rng):
        config = CONFIG.ablate(shared_prototypes=False)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        loss = model.training_loss(batch, sampler)
        loss.backward()
        assert np.isfinite(loss.item())
        # Dedicated extractors exist, one per active behavior.
        assert len(model.behavior_extractors) == len(model.active_behaviors)

    def test_dedicated_prototypes_differ_per_behavior(self, tiny_dataset, tiny_graph):
        config = CONFIG.ablate(shared_prototypes=False)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        first = model.behavior_extractors[0].prototypes.numpy()
        second = model.behavior_extractors[1].prototypes.numpy()
        assert not np.allclose(first, second)

    def test_default_path_unchanged_by_feature(self, tiny_dataset, tiny_graph,
                                               tiny_split):
        """Adding the option must not shift the default model's RNG stream."""
        from repro.nn.tensor import no_grad
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      CONFIG, seed=11)
        assert not hasattr(model, "behavior_extractors")
        model.eval()
        batch = collate(tiny_split.test[:3], tiny_dataset.schema)
        with no_grad():
            scores = model.score_candidates(batch, np.tile(np.arange(1, 6), (3, 1)))
        assert np.isfinite(scores.numpy()).all()

    def test_mean_pooled_contrast_used(self, tiny_dataset, tiny_graph, tiny_split, rng):
        from repro.core.ssl import cross_behavior_interest_contrast
        from repro.nn.tensor import Tensor
        target = Tensor(rng.normal(size=(6, 3, 4)))
        aux = Tensor(rng.normal(size=(6, 3, 4)))
        aligned = cross_behavior_interest_contrast(target, [aux], 0.3,
                                                   slot_aligned=True).item()
        pooled = cross_behavior_interest_contrast(target, [aux], 0.3,
                                                  slot_aligned=False).item()
        assert aligned != pytest.approx(pooled)
