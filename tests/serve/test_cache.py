"""Interest-cache tests: TTL expiry, LRU eviction, invalidation."""

import pytest

from repro.serve import InterestCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestLookup:
    def test_miss_then_hit(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        assert cache.get(1, 0) is None
        cache.put(1, 0, "vectors")
        assert cache.get(1, 0) == "vectors"

    def test_version_is_part_of_the_key(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "stale")
        assert cache.get(1, 1) is None

    def test_ttl_expiry(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "vectors")
        clock.now = 9.999
        assert cache.get(1, 0) == "vectors"
        clock.now = 10.0
        assert cache.get(1, 0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_lru_eviction_order(self, clock):
        cache = InterestCache(capacity=2, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.put(2, 0, "b")
        cache.get(1, 0)            # refresh 1 → 2 becomes LRU
        cache.put(3, 0, "c")
        assert cache.get(2, 0) is None
        assert cache.get(1, 0) == "a"
        assert cache.get(3, 0) == "c"
        assert cache.evictions == 1

    def test_invalidate_drops_all_versions(self, clock):
        cache = InterestCache(capacity=8, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.put(1, 1, "b")
        cache.put(2, 0, "c")
        assert cache.invalidate(1) == 2
        assert len(cache) == 1
        assert cache.get(2, 0) == "c"

    def test_clear(self, clock):
        cache = InterestCache(capacity=8, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_bounds(self, clock):
        with pytest.raises(ValueError):
            InterestCache(capacity=0)
        with pytest.raises(ValueError):
            InterestCache(ttl_seconds=0.0)
