"""Interest-cache tests: TTL expiry, LRU eviction, stampede suppression."""

import threading

import pytest

from repro.serve import InterestCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestLookup:
    def test_miss_then_hit(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        assert cache.get(1, 0) is None
        cache.put(1, 0, "vectors")
        assert cache.get(1, 0) == "vectors"

    def test_version_is_part_of_the_key(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "stale")
        assert cache.get(1, 1) is None

    def test_ttl_expiry(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "vectors")
        clock.now = 9.999
        assert cache.get(1, 0) == "vectors"
        clock.now = 10.0
        assert cache.get(1, 0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_lru_eviction_order(self, clock):
        cache = InterestCache(capacity=2, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.put(2, 0, "b")
        cache.get(1, 0)            # refresh 1 → 2 becomes LRU
        cache.put(3, 0, "c")
        assert cache.get(2, 0) is None
        assert cache.get(1, 0) == "a"
        assert cache.get(3, 0) == "c"
        assert cache.evictions == 1

    def test_invalidate_drops_all_versions(self, clock):
        cache = InterestCache(capacity=8, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.put(1, 1, "b")
        cache.put(2, 0, "c")
        assert cache.invalidate(1) == 2
        assert len(cache) == 1
        assert cache.get(2, 0) == "c"

    def test_clear(self, clock):
        cache = InterestCache(capacity=8, ttl_seconds=10.0, clock=clock)
        cache.put(1, 0, "a")
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_bounds(self, clock):
        with pytest.raises(ValueError):
            InterestCache(capacity=0)
        with pytest.raises(ValueError):
            InterestCache(ttl_seconds=0.0)


class TestSingleFlight:
    def test_first_claim_owns_later_claims_wait(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        assert cache.claim(1, 0) is None  # owner
        event = cache.claim(1, 0)
        assert event is not None and not event.is_set()
        assert cache.stampedes_suppressed == 1
        cache.fulfill(1, 0, "vectors")
        assert event.is_set()
        assert cache.get(1, 0) == "vectors"

    def test_distinct_keys_claim_independently(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        assert cache.claim(1, 0) is None
        assert cache.claim(1, 1) is None  # new version → fresh claim
        assert cache.claim(2, 0) is None
        assert cache.stampedes_suppressed == 0

    def test_abandon_releases_waiters_without_a_value(self, clock):
        cache = InterestCache(capacity=4, ttl_seconds=10.0, clock=clock)
        assert cache.claim(1, 0) is None
        event = cache.claim(1, 0)
        cache.abandon(1, 0)
        assert event.is_set()
        assert cache.get(1, 0) is None  # waiter falls back to self-encode
        assert cache.claim(1, 0) is None  # the key is claimable again

    def test_concurrent_claimants_see_one_owner(self, clock):
        cache = InterestCache(capacity=8, ttl_seconds=10.0, clock=clock)
        barrier = threading.Barrier(6)
        outcomes = []
        lock = threading.Lock()

        def contend():
            barrier.wait()
            event = cache.claim(7, 0)
            if event is None:
                # Hold the claim until every other thread has hit it, so the
                # stampede is real rather than a lucky sequential interleave.
                deadline = 100_000
                while cache.stampedes_suppressed < 5 and deadline:
                    deadline -= 1
                    threading.Event().wait(0.001)
                cache.fulfill(7, 0, "vectors")
                with lock:
                    outcomes.append("owner")
            else:
                assert event.wait(10.0)
                with lock:
                    outcomes.append(cache.get(7, 0))

        threads = [threading.Thread(target=contend) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert outcomes.count("owner") == 1
        assert outcomes.count("vectors") == 5
        assert cache.stampedes_suppressed == 5
