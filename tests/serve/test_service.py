"""Service-facade tests: offline parity, cache invalidation, recall probes."""

import numpy as np
import pytest

from repro.recommend import recommend, recommend_batch
from repro.serve import HistoryStore, RecommenderService


@pytest.fixture
def service(artifact, history):
    with RecommenderService(artifact, history, index_backend="exact",
                            max_wait_ms=1.0) as svc:
        yield svc


class TestOfflineParity:
    """Acceptance: exact-backend served top-k == repro.recommend top-k."""

    def test_single_requests_match_recommend(self, service, serving_model,
                                             tiny_dataset):
        for user in tiny_dataset.users[:8]:
            served = service.recommend(user, k=10)
            offline = recommend(serving_model, tiny_dataset, user, k=10)
            assert [r.item for r in served] == [r.item for r in offline]
            np.testing.assert_allclose([r.score for r in served],
                                       [r.score for r in offline])
            assert [r.rank for r in served] == list(range(len(served)))

    def test_batch_requests_match_recommend_batch(self, service, serving_model,
                                                  tiny_dataset):
        users = tiny_dataset.users[:6]
        served = service.recommend_many(users, k=5)
        offline = recommend_batch(serving_model, tiny_dataset, users, k=5)
        for user in users:
            assert [r.item for r in served[user]] == \
                [r.item for r in offline[user]]

    def test_served_items_exclude_seen(self, service, tiny_dataset):
        user = tiny_dataset.users[0]
        seen = tiny_dataset.items_of_user(user)
        assert not seen & {r.item for r in service.recommend(user, k=20)}


class TestCacheBehavior:
    def test_repeat_request_hits_cache(self, service, tiny_dataset):
        user = tiny_dataset.users[0]
        first = service.recommend(user, k=5)
        second = service.recommend(user, k=5)
        assert [r.item for r in first] == [r.item for r in second]
        assert service.metrics.cache_hits == 1
        assert service.metrics.cache_misses == 1

    def test_append_event_invalidates_cache(self, service, tiny_dataset):
        user = tiny_dataset.users[0]
        service.recommend(user, k=5)
        novel = service.recommend(user, k=1)[0].item
        assert service.append_event(user, novel,
                                    tiny_dataset.schema.behaviors[0]) == 1
        assert len(service.cache) == 0  # eager invalidation
        after = service.recommend(user, k=20)
        assert novel not in {r.item for r in after}  # now seen
        # The re-encode was a miss: version 1 was never cached before.
        assert service.metrics.cache_misses == 2
        assert service.metrics.cache_hits == 1

    def test_history_version_keying_without_eager_invalidation(
            self, artifact, tiny_dataset):
        # Even bypassing append_event, a direct history append makes the
        # cached entry unreachable because the version is part of the key.
        history = HistoryStore.from_dataset(tiny_dataset)
        with RecommenderService(artifact, history, max_wait_ms=1.0) as svc:
            user = tiny_dataset.users[0]
            svc.recommend(user, k=5)
            history.append(user, 1, tiny_dataset.schema.behaviors[0])
            svc.recommend(user, k=5)
            assert svc.metrics.cache_hits == 0
            assert svc.metrics.cache_misses == 2


class TestStampedeSuppression:
    def test_concurrent_misses_encode_once(self, artifact, tiny_dataset):
        """Four threads missing on the same user yield ONE encode: the first
        claimant owns it, the rest wait on the claim and read the cache."""
        import threading
        import time as time_mod

        history = HistoryStore.from_dataset(tiny_dataset)
        with RecommenderService(artifact, history, max_wait_ms=1.0) as svc:
            real_interests = svc.encoder.interests
            encode_calls = []

            def slow_interests(batch):
                encode_calls.append(1)
                time_mod.sleep(0.25)  # hold the claim open for the stampede
                return real_interests(batch)

            svc.encoder.interests = slow_interests
            user = tiny_dataset.users[0]
            barrier = threading.Barrier(4)
            results = {}

            def hammer(slot):
                barrier.wait()
                results[slot] = svc.recommend_many([user], k=5)[user]

            threads = [threading.Thread(target=hammer, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(results) == 4
            first = [r.item for r in results[0]]
            assert all([r.item for r in results[slot]] == first
                       for slot in range(4))
            assert len(encode_calls) == 1  # the whole stampede → one encode
            assert svc.metrics.stampedes_suppressed == 3
            stats = svc.stats()
            assert stats["cache"]["stampede_suppressed"] == 3

    def test_owner_failure_releases_waiters(self, artifact, tiny_dataset):
        """An owner whose encode blows up abandons the claim; a waiter falls
        back to encoding for itself instead of deadlocking."""
        import threading

        history = HistoryStore.from_dataset(tiny_dataset)
        with RecommenderService(artifact, history, max_wait_ms=1.0) as svc:
            real_interests = svc.encoder.interests
            waiter_ready = threading.Event()
            outcome = {}

            def exploding_interests(batch):
                waiter_ready.wait(10.0)  # keep the claim open until B waits
                svc.encoder.interests = real_interests
                raise RuntimeError("encoder on fire")

            svc.encoder.interests = exploding_interests
            user = tiny_dataset.users[0]

            def owner():
                try:
                    svc.recommend_many([user], k=5)
                except RuntimeError as error:
                    outcome["owner"] = str(error)

            def waiter():
                while svc.metrics.stampedes_suppressed == 0:
                    pass  # spin until our claim is registered as a wait
                waiter_ready.set()

            owner_thread = threading.Thread(target=owner)
            owner_thread.start()
            import time as time_mod
            time_mod.sleep(0.1)  # let the owner take the claim
            release_thread = threading.Thread(target=waiter)
            release_thread.start()
            outcome["waiter"] = svc.recommend_many([user], k=5)[user]
            owner_thread.join(timeout=30.0)
            release_thread.join(timeout=30.0)
            assert outcome["owner"] == "encoder on fire"
            assert outcome["waiter"]  # served via the fallback encode


class TestApproximateBackend:
    def test_recall_probes_recorded(self, artifact, history):
        with RecommenderService(artifact, history, index_backend="ivf",
                                index_options={"seed": 0}, max_wait_ms=1.0,
                                recall_probe_every=1) as svc:
            for user in history.users[:6]:
                svc.recommend(user, k=10)
            stats = svc.stats()
        assert stats["index"]["backend"] == "ivf"
        assert stats["recall"]["samples"] == 6
        assert 0.0 <= stats["recall"]["mean"] <= 1.0

    def test_full_probe_ivf_matches_exact_items(self, artifact, history,
                                                service, tiny_dataset):
        nlist = int(round(np.sqrt(artifact.num_items)))
        with RecommenderService(
                artifact, HistoryStore.from_dataset(tiny_dataset),
                index_backend="ivf", max_wait_ms=1.0,
                index_options={"nlist": nlist, "nprobe": nlist, "seed": 0}) as svc:
            for user in tiny_dataset.users[:4]:
                approx = {r.item for r in svc.recommend(user, k=10)}
                exact = {r.item for r in service.recommend(user, k=10)}
                assert approx == exact


class TestValidationAndStats:
    def test_unknown_user_rejected(self, service):
        with pytest.raises(KeyError, match="not in the history store"):
            service.recommend(10_000_000)
        assert service.metrics.errors == 1

    def test_bad_k_rejected(self, service, tiny_dataset):
        with pytest.raises(ValueError):
            service.recommend(tiny_dataset.users[0], k=0)
        with pytest.raises(ValueError):
            service.recommend_many(tiny_dataset.users[:2], k=-1)

    def test_schema_mismatch_rejected(self, artifact, tiny_dataset):
        from repro.data import BehaviorSchema
        other = HistoryStore(BehaviorSchema(behaviors=("click",), target="click"),
                             tiny_dataset.num_items)
        with pytest.raises(ValueError, match="schema"):
            RecommenderService(artifact, other)

    def test_stats_shape(self, service, tiny_dataset):
        import json
        service.recommend(tiny_dataset.users[0], k=3)
        stats = service.stats()
        json.dumps(stats)
        assert stats["requests"] == 1
        assert stats["index"] == {
            "backend": "exact",
            "num_items": tiny_dataset.num_items,
            "prebuilt": False,
            "resident_bytes": service.index.vectors.nbytes,
        }
        assert set(stats["stages"]) == {"queue", "encode", "retrieve",
                                        "rank", "total"}
        assert "stage" in service.report()

    def test_cold_start_user_served_after_append(self, service, tiny_dataset):
        newcomer = max(tiny_dataset.users) + 1
        with pytest.raises(KeyError):
            service.recommend(newcomer)
        service.append_event(newcomer, 1, tiny_dataset.schema.behaviors[0])
        recs = service.recommend(newcomer, k=5)
        assert recs and all(r.item != 1 for r in recs)
