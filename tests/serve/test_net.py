"""Network serving tests: socket parity, shedding, drain, replica failover.

The acceptance bar for the network tier is *parity through a real socket*:
answers served over TCP must equal ``RecommenderService.recommend`` for the
same artifact and requests, at every index backend and replica count.
"""

import json
import threading
import time

import pytest

from repro.serve import (HistoryStore, NetClient, NetServer,
                         RecommenderService, ReplicaSet, build_backend,
                         normalize_request, run_load)


def reference_answers(artifact, dataset, users, k, index_backend="exact"):
    """In-process ground truth for socket parity comparisons."""
    service = RecommenderService(artifact, HistoryStore.from_dataset(dataset),
                                 index_backend=index_backend)
    try:
        return {user: [(r.item, r.score) for r in service.recommend(user, k=k)]
                for user in users}
    finally:
        service.close()


@pytest.fixture
def parity_users(history):
    return history.users[:6]


def start_server(backend, **kwargs):
    server = NetServer(backend, **kwargs)
    host, port = server.start_background()
    return server, host, port


class TestNormalizeRequest:
    def test_recommend_defaults_k(self):
        op = normalize_request({"user": 3}, default_k=7)
        assert op == {"op": "recommend", "user": 3, "k": 7}

    def test_append_shape(self):
        op = normalize_request({"op": "append", "user": 1, "item": 2,
                               "behavior": "view"})
        assert op["timestamp"] is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            normalize_request({"op": "destroy"})

    def test_missing_user_raises_keyerror(self):
        with pytest.raises(KeyError):
            normalize_request({"op": "recommend"})


class TestLocalBackendOverSocket:
    def test_parity_and_protocol(self, artifact, tiny_dataset, parity_users):
        expected = reference_answers(artifact, tiny_dataset, parity_users, k=5)
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset))
        server, host, port = start_server(backend, max_inflight=8)
        try:
            with NetClient(host, port) as client:
                for user in parity_users:
                    response = client.recommend(user, k=5)
                    assert response["ok"], response
                    got = list(zip(response["items"], response["scores"]))
                    assert got == expected[user]
                stats = client.stats()
                assert stats["ok"]
                assert stats["stats"]["net"]["requests"] >= len(parity_users)
                report = client.report()
                assert report["ok"] and "qps" in report["report"]
        finally:
            server.stop()
            backend.close()

    def test_malformed_requests_get_error_responses(self, artifact,
                                                    tiny_dataset):
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset))
        server, host, port = start_server(backend)
        try:
            with NetClient(host, port) as client:
                missing = client.request({"op": "recommend"})
                assert not missing["ok"] and "user" in missing["error"]
                unknown = client.request({"op": "explode"})
                assert not unknown["ok"] and "unknown op" in unknown["error"]
                absent = client.recommend(10_000_000)
                assert not absent["ok"] and "not in the history" in absent["error"]
                client._file.write(b"this is not json\n")
                client._file.flush()
                bad = json.loads(client._file.readline())
                assert not bad["ok"] and "bad json" in bad["error"]
                # the connection survives every error above
                assert client.stats()["ok"]
        finally:
            server.stop()
            backend.close()

    def test_quit_closes_the_connection(self, artifact, tiny_dataset):
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset))
        server, host, port = start_server(backend)
        try:
            client = NetClient(host, port)
            with pytest.raises(ConnectionError):
                client.request({"op": "quit"})
            client.close()
        finally:
            server.stop()
            backend.close()


class _StubBackend:
    """Deterministic stand-in so front-end behavior tests need no model."""

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = 0

    def process(self, op):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return {"ok": True, "user": op.get("user"), "items": [], "scores": []}

    def close(self):
        pass


class TestFrontEndDiscipline:
    def test_overload_sheds_instead_of_queueing(self):
        backend = _StubBackend(delay=0.5)
        server, host, port = start_server(backend, max_inflight=1)
        try:
            slow = NetClient(host, port)
            fast = NetClient(host, port)
            done = {}

            def long_request():
                done["slow"] = slow.recommend(1)

            thread = threading.Thread(target=long_request)
            thread.start()
            time.sleep(0.15)  # let the slow request occupy the one slot
            shed = fast.recommend(2)
            thread.join(timeout=10.0)
            assert shed["shed"] is True and not shed["ok"]
            assert "overloaded" in shed["error"]
            assert done["slow"]["ok"]
            slow.close()
            fast.close()
            assert server.net_stats()["shed"] == 1
        finally:
            server.stop()
            backend.close()

    def test_read_timeout_drops_silent_connections(self):
        backend = _StubBackend()
        server, host, port = start_server(backend, read_timeout=0.2)
        try:
            client = NetClient(host, port)
            started = time.monotonic()
            line = client._file.readline()  # server closes on us; EOF
            assert line == b""
            assert time.monotonic() - started < 5.0
            client.close()
            assert server.net_stats()["read_timeouts"] == 1
        finally:
            server.stop()
            backend.close()

    def test_graceful_drain_finishes_inflight_then_refuses(self):
        backend = _StubBackend(delay=0.4)
        server, host, port = start_server(backend, drain_grace=5.0)
        try:
            client = NetClient(host, port)
            outcome = {}

            def inflight():
                outcome["response"] = client.recommend(1)

            thread = threading.Thread(target=inflight)
            thread.start()
            time.sleep(0.1)
            server.stop()  # drain: must wait for the in-flight request
            thread.join(timeout=10.0)
            assert outcome["response"]["ok"]
            client.close()
            with pytest.raises(ConnectionError):
                NetClient(host, port, connect_retries=2, retry_delay=0.02)
        finally:
            server.stop()
            backend.close()


class TestReplicaParity:
    @pytest.mark.parametrize("index_backend", ["exact", "ivf", "hnsw"])
    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_socket_answers_match_in_process(self, artifact, tiny_dataset,
                                             parity_users, index_backend,
                                             replicas):
        options = {"index_backend": index_backend}
        if index_backend == "ivf":
            options["index_options"] = {"nlist": 8, "nprobe": 4, "seed": 0}
        elif index_backend == "hnsw":
            options["index_options"] = {"M": 8, "ef_search": 32, "seed": 0}
        service = RecommenderService(
            artifact, HistoryStore.from_dataset(tiny_dataset), **options)
        expected = {user: [(r.item, r.score)
                           for r in service.recommend(user, k=5)]
                    for user in parity_users}
        service.close()
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset),
                                replicas=replicas, service_options=options,
                                pool_timeout=60.0)
        server, host, port = start_server(backend, max_inflight=16)
        try:
            with NetClient(host, port) as client:
                for user in parity_users:
                    response = client.recommend(user, k=5)
                    assert response["ok"], response
                    got = list(zip(response["items"], response["scores"]))
                    assert got == expected[user], (index_backend, replicas, user)
        finally:
            server.stop()
            backend.close()


class TestReplicaOperations:
    def test_append_routes_to_one_replica_and_serves(self, artifact,
                                                     tiny_dataset):
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset),
                                replicas=2, pool_timeout=60.0)
        server, host, port = start_server(backend)
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        try:
            with NetClient(host, port) as client:
                first = client.append(user, 3, behavior)
                assert first["ok"] and first["version"] == 1
                second = client.append(user, 4, behavior)
                assert second["ok"] and second["version"] == 2
                response = client.recommend(user, k=5)
                assert response["ok"]
                assert 3 not in response["items"]  # seen items stay excluded
                stats = client.stats()
                assert len(stats["stats"]["replicas"]) == 2
        finally:
            server.stop()
            backend.close()

    def test_user_hash_routing_is_stable(self):
        for user in (0, 1, 17, 123456):
            assert ReplicaSet.route(user, 3) == ReplicaSet.route(user, 3)
            assert 0 <= ReplicaSet.route(user, 3) < 3


class TestReplicaFailover:
    def test_kill_mid_load_loses_no_accepted_request(self, artifact,
                                                     tiny_dataset, history):
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset),
                                replicas=2, pool_timeout=30.0)
        assert isinstance(backend, ReplicaSet)
        server, host, port = start_server(backend, max_inflight=16)
        killed = threading.Event()

        def chaos(ordinal):
            if ordinal == 20 and not killed.is_set():
                killed.set()
                backend.kill_replica(0)

        try:
            report = run_load(host, port, history.users[:16], connections=3,
                              target_qps=150.0, total_requests=80, warmup=5,
                              k=5, seed=3, on_request=chaos)
            assert killed.is_set()
            # Every accepted request terminated: answered, shed, or an
            # explicit error — never a hang (sent covers all of them).
            assert report.sent == 80
            assert report.ok + report.shed + report.errors == 80
            assert report.ok >= 40  # the survivor kept answering
            # The dead replica respawns from the same artifact and serves.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if all(r.alive for r in backend.replicas):
                    break
                time.sleep(0.1)
            assert all(r.alive for r in backend.replicas)
            assert backend.replicas[0].generation >= 1
            with NetClient(host, port) as client:
                for user in history.users[:6]:
                    assert client.recommend(user, k=5)["ok"]
        finally:
            server.stop()
            backend.close()

    def test_requests_fail_fast_when_every_replica_is_down(self, artifact,
                                                           tiny_dataset):
        backend = ReplicaSet(artifact, HistoryStore.from_dataset(tiny_dataset),
                             replicas=1, pool_timeout=30.0,
                             respawn_poll=30.0)  # keep the replica dead
        server, host, port = start_server(backend)
        try:
            backend.kill_replica(0)
            deadline = time.monotonic() + 10.0
            while backend.replicas[0].alive and time.monotonic() < deadline:
                time.sleep(0.05)
            with NetClient(host, port) as client:
                started = time.monotonic()
                response = client.recommend(tiny_dataset.users[0], k=5)
                assert not response["ok"]
                assert response.get("retryable") is True
                assert time.monotonic() - started < 10.0  # fail fast, no hang
        finally:
            server.stop()
            backend.close()


class TestLoadGenerator:
    def test_closed_loop_accounting(self, artifact, tiny_dataset, history):
        backend = build_backend(artifact,
                                HistoryStore.from_dataset(tiny_dataset))
        server, host, port = start_server(backend, max_inflight=8)
        try:
            report = run_load(host, port, history.users[:10], connections=2,
                              target_qps=100.0, total_requests=40, warmup=8,
                              k=5, seed=0)
            assert report.sent == 40
            assert report.ok == 40 and report.shed == 0 and report.errors == 0
            assert len(report.latencies_ms) == 32  # warmup excluded
            assert report.percentile(99.0) >= report.percentile(50.0)
            payload = report.to_dict()
            assert payload["achieved_qps"] > 0
        finally:
            server.stop()
            backend.close()
