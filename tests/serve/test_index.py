"""Retrieval-index tests: exact baseline, IVF/HNSW recall, exclusions."""

import numpy as np
import pytest

from repro.serve import (ExactIndex, HNSWIndex, IVFIndex, build_index,
                         topk_overlap)


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(11).normal(size=(200, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(12).normal(size=(3, 16)).astype(np.float32)


class TestExactIndex:
    def test_matches_manual_topk(self, vectors, queries):
        index = ExactIndex(vectors)
        result = index.search(queries, k=10)
        manual = (queries @ vectors.T).max(axis=0).astype(np.float64)
        expected = np.argsort(-manual)[:10]
        np.testing.assert_array_equal(result.items, expected + 1)
        np.testing.assert_allclose(result.scores, manual[expected])
        assert result.candidates_scored == 200

    def test_scores_descending(self, vectors, queries):
        result = ExactIndex(vectors).search(queries, k=25)
        assert (np.diff(result.scores) <= 0).all()

    def test_exclusions_absent(self, vectors, queries):
        index = ExactIndex(vectors)
        exclude = set(index.search(queries, k=5).items.tolist())
        result = index.search(queries, k=10, exclude=exclude)
        assert not exclude & set(result.items.tolist())

    def test_single_vector_query(self, vectors, queries):
        index = ExactIndex(vectors)
        single = index.search(queries[0], k=5)
        assert len(single) == 5

    def test_k_beyond_catalog(self, vectors, queries):
        result = ExactIndex(vectors).search(queries, k=10_000)
        assert len(result) == 200

    def test_rejects_bad_inputs(self, vectors, queries):
        index = ExactIndex(vectors)
        with pytest.raises(ValueError, match="k must be positive"):
            index.search(queries, k=0)
        with pytest.raises(ValueError, match="interest queries"):
            index.search(queries[None], k=5)


class TestIVFIndex:
    def test_full_probe_matches_exact(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=20)
        ivf = IVFIndex(vectors, nlist=8, nprobe=8, seed=0)
        approx = ivf.search(queries, k=20)
        assert topk_overlap(approx.items, exact.items) == 1.0
        np.testing.assert_allclose(np.sort(approx.scores),
                                   np.sort(exact.scores))

    def test_partial_probe_prunes_candidates(self, vectors, queries):
        ivf = IVFIndex(vectors, nlist=16, nprobe=2, seed=0)
        result = ivf.search(queries, k=10)
        assert result.candidates_scored < 200
        assert len(result) <= 10

    def test_partial_probe_recall_reasonable(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        ivf = IVFIndex(vectors, nlist=16, nprobe=8, seed=0)
        recall = topk_overlap(ivf.search(queries, k=10).items, exact.items)
        assert 0.5 <= recall <= 1.0

    def test_deterministic_given_seed(self, vectors, queries):
        first = IVFIndex(vectors, nlist=8, seed=3).search(queries, k=10)
        second = IVFIndex(vectors, nlist=8, seed=3).search(queries, k=10)
        np.testing.assert_array_equal(first.items, second.items)

    def test_defaults_auto_calibrate_nprobe(self, vectors):
        ivf = IVFIndex(vectors)
        assert ivf.nlist == round(np.sqrt(200))
        assert ivf.auto_calibrated
        assert 1 <= ivf.nprobe <= ivf.nlist
        # The calibrated default covers the target recall on its own sample
        # (or saturated at nlist trying).
        assert (ivf.calibration["achieved_coverage"]
                >= ivf.calibration["target_recall"]
                or ivf.nprobe == ivf.nlist)
        assert sum(len(rows) for rows in ivf.lists) == 200

    def test_calibrated_recall_beats_legacy_default(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        calibrated = IVFIndex(vectors, seed=0)
        legacy = IVFIndex(vectors, nprobe=max(1, calibrated.nlist // 4),
                          seed=0)
        calibrated_recall = topk_overlap(
            calibrated.search(queries, k=10).items, exact.items)
        legacy_recall = topk_overlap(
            legacy.search(queries, k=10).items, exact.items)
        assert calibrated_recall >= legacy_recall

    def test_explicit_nprobe_skips_calibration(self, vectors):
        ivf = IVFIndex(vectors, nlist=8, nprobe=2)
        assert not ivf.auto_calibrated
        assert ivf.calibration is None
        assert ivf.nprobe == 2

    def test_calibration_respects_target(self, vectors):
        easy = IVFIndex(vectors, nlist=16, target_recall=0.05, seed=0)
        hard = IVFIndex(vectors, nlist=16, target_recall=1.0, seed=0)
        assert easy.nprobe <= hard.nprobe

    def test_exclusions_absent(self, vectors, queries):
        ivf = IVFIndex(vectors, nlist=8, nprobe=8, seed=0)
        exclude = set(ivf.search(queries, k=5).items.tolist())
        result = ivf.search(queries, k=10, exclude=exclude)
        assert not exclude & set(result.items.tolist())

    def test_state_round_trip(self, vectors, queries):
        ivf = IVFIndex(vectors, nlist=8, seed=0)
        meta, arrays = ivf.state()
        clone = IVFIndex.from_state(vectors, meta, arrays)
        original = ivf.search(queries, k=10, exclude={1, 2})
        restored = clone.search(queries, k=10, exclude={1, 2})
        np.testing.assert_array_equal(original.items, restored.items)
        np.testing.assert_array_equal(original.scores, restored.scores)
        assert clone.nprobe == ivf.nprobe
        assert clone.auto_calibrated == ivf.auto_calibrated


class TestHNSWIndex:
    def test_wide_beam_matches_exact(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=20)
        hnsw = HNSWIndex(vectors, M=8, ef_search=200, seed=0)
        approx = hnsw.search(queries, k=20)
        assert topk_overlap(approx.items, exact.items) == 1.0
        np.testing.assert_allclose(np.sort(approx.scores),
                                   np.sort(exact.scores))

    def test_narrow_beam_prunes_candidates(self, vectors, queries):
        hnsw = HNSWIndex(vectors, M=8, ef_search=16, seed=0)
        result = hnsw.search(queries, k=10)
        assert result.candidates_scored < 200
        assert len(result) <= 10

    def test_recall_improves_with_ef_search(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        hnsw = HNSWIndex(vectors, M=8, ef_search=8, seed=0)
        narrow = topk_overlap(hnsw.search(queries, k=10).items, exact.items)
        wide = topk_overlap(
            hnsw.search(queries, k=10, ef_search=128).items, exact.items)
        assert wide >= narrow
        assert wide >= 0.9

    def test_per_call_ef_search_override(self, vectors, queries):
        hnsw = HNSWIndex(vectors, M=8, ef_search=16, seed=0)
        narrow = hnsw.search(queries, k=10)
        wide = hnsw.search(queries, k=10, ef_search=128)
        assert wide.candidates_scored > narrow.candidates_scored
        assert hnsw.ef_search == 16  # the constructor knob is untouched

    def test_deterministic_given_seed(self, vectors, queries):
        first = HNSWIndex(vectors, M=8, seed=3).search(queries, k=10)
        second = HNSWIndex(vectors, M=8, seed=3).search(queries, k=10)
        np.testing.assert_array_equal(first.items, second.items)
        np.testing.assert_allclose(first.scores, second.scores)

    def test_layered_structure(self, vectors):
        hnsw = HNSWIndex(vectors, M=4, seed=0)
        assert hnsw.max_level >= 1  # 200 items at 1/ln(4) decay span layers
        assert len(hnsw._graph[0]) == 200  # every item lives on layer 0
        for layer in range(1, hnsw.max_level + 1):
            assert len(hnsw._graph[layer]) < len(hnsw._graph[layer - 1])
        for node, links in hnsw._graph[0].items():
            assert len(links) <= 2 * hnsw.M
            assert node not in links

    def test_exclusions_absent(self, vectors, queries):
        hnsw = HNSWIndex(vectors, M=8, ef_search=64, seed=0)
        exclude = set(hnsw.search(queries, k=5).items.tolist())
        result = hnsw.search(queries, k=10, exclude=exclude)
        assert not exclude & set(result.items.tolist())

    def test_single_item_catalog(self, queries):
        hnsw = HNSWIndex(queries[:1], M=4, seed=0)
        result = hnsw.search(queries, k=5)
        assert len(result) == 1 and result.items[0] == 1

    def test_rejects_bad_inputs(self, vectors, queries):
        hnsw = HNSWIndex(vectors, M=8, seed=0)
        with pytest.raises(ValueError, match="k must be positive"):
            hnsw.search(queries, k=0)
        with pytest.raises(ValueError, match="empty catalog"):
            HNSWIndex(vectors[:0])

    def test_state_round_trip(self, vectors, queries):
        hnsw = HNSWIndex(vectors, M=8, ef_search=32, seed=0)
        meta, arrays = hnsw.state()
        clone = HNSWIndex.from_state(vectors, meta, arrays)
        assert clone._graph == hnsw._graph
        assert clone._entry == hnsw._entry
        assert clone.max_level == hnsw.max_level
        original = hnsw.search(queries, k=10, exclude={1, 2})
        restored = clone.search(queries, k=10, exclude={1, 2})
        np.testing.assert_array_equal(original.items, restored.items)
        np.testing.assert_array_equal(original.scores, restored.scores)


class TestHelpers:
    def test_topk_overlap(self):
        assert topk_overlap(np.array([1, 2, 3]), np.array([2, 3, 4])) == pytest.approx(2 / 3)
        assert topk_overlap(np.array([]), np.array([])) == 1.0

    def test_build_index_dispatch(self, vectors):
        assert build_index(vectors, "exact").backend == "exact"
        assert build_index(vectors, "ivf", nlist=4).backend == "ivf"
        assert build_index(vectors, "hnsw", M=4).backend == "hnsw"
        assert build_index(vectors, "exact_sq").backend == "exact_sq"
        assert build_index(vectors, "pq", m=4).backend == "pq"
        assert build_index(vectors, "ivf_pq", m=4).backend == "ivf_pq"
        with pytest.raises(ValueError, match="unknown index backend"):
            build_index(vectors, "faiss")

    def test_load_index_state_runtime_options(self, vectors):
        from repro.serve import load_index_state
        ivf = IVFIndex(vectors, nlist=8, seed=0)
        meta, arrays = ivf.state()
        retuned = load_index_state(vectors, meta, arrays,
                                   options={"nprobe": 3})
        assert retuned.nprobe == 3
        with pytest.raises(ValueError, match="cannot be applied"):
            load_index_state(vectors, meta, arrays, options={"nlist": 4})

    def test_resident_bytes_reported(self, vectors):
        for backend in ("exact", "ivf", "hnsw"):
            index = build_index(vectors, backend)
            assert index.resident_bytes() >= vectors.nbytes
