"""History-store tests: example parity, versioning, concurrency, validation."""

import pickle
import threading

import pytest

from repro.recommend import build_inference_example
from repro.serve import HistoryStore


class TestSeeding:
    def test_examples_match_offline_builder(self, tiny_dataset, history):
        for user in tiny_dataset.users:
            assert history.example(user, max_len=50) == \
                build_inference_example(tiny_dataset, user, max_len=50)

    def test_short_max_len_matches_offline_builder(self, tiny_dataset, history):
        for user in tiny_dataset.users[:10]:
            assert history.example(user, max_len=3) == \
                build_inference_example(tiny_dataset, user, max_len=3)

    def test_users_and_seen(self, tiny_dataset, history):
        assert history.users == tiny_dataset.users
        user = tiny_dataset.users[0]
        assert history.has_user(user)
        assert history.seen(user) == tiny_dataset.items_of_user(user)

    def test_versions_start_at_zero(self, tiny_dataset, history):
        assert history.version(tiny_dataset.users[0]) == 0


class TestAppend:
    def test_bumps_version_and_seen(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        assert history.append(user, 1, behavior) == 1
        assert history.append(user, 2, behavior) == 2
        assert {1, 2} <= history.seen(user)

    def test_appended_event_reaches_example(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        history.append(user, 3, behavior)
        example = history.example(user)
        assert example.inputs[behavior][-1] == 3
        assert example.merged_items[-1] == 3

    def test_default_timestamp_is_monotonic(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        history.append(user, 1, behavior)
        history.append(user, 2, behavior)
        example = history.example(user)
        assert example.merged_items[-2:] == (1, 2)

    def test_rejects_time_travel(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        history.append(user, 1, behavior, timestamp=1_000)
        with pytest.raises(ValueError, match="precedes"):
            history.append(user, 2, behavior, timestamp=10)

    def test_rejects_unknown_behavior(self, tiny_dataset, history):
        with pytest.raises(KeyError, match="unknown behavior"):
            history.append(tiny_dataset.users[0], 1, "teleport")

    def test_rejects_out_of_range_item(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        with pytest.raises(ValueError, match="outside"):
            history.append(user, 0, behavior)
        with pytest.raises(ValueError, match="outside"):
            history.append(user, tiny_dataset.num_items + 1, behavior)

    def test_cold_start_creates_user(self, tiny_dataset, history):
        newcomer = max(tiny_dataset.users) + 1
        assert not history.has_user(newcomer)
        version = history.append(newcomer, 1, tiny_dataset.schema.behaviors[0])
        assert version == 1
        assert history.has_user(newcomer)
        example = history.example(newcomer)
        assert example.merged_items == (1,)

    def test_unknown_user_example_raises(self, history):
        with pytest.raises(KeyError, match="not in the history store"):
            history.example(10_000_000)


class TestConcurrency:
    def test_parallel_appends_never_lose_a_version(self, tiny_dataset,
                                                   history):
        """N threads × M appends on one user: the read-modify-write under
        the lock means the final version is exactly N * M."""
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        versions = []
        lock = threading.Lock()

        def append_many():
            for _ in range(25):
                version = history.append(user, 1, behavior)
                with lock:
                    versions.append(version)

        threads = [threading.Thread(target=append_many) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert history.version(user) == 200
        assert sorted(versions) == list(range(1, 201))  # no duplicates

    def test_readers_race_appenders_safely(self, tiny_dataset, history):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        stop = threading.Event()
        failures = []

        def read_loop():
            while not stop.is_set():
                try:
                    example = history.example(user, max_len=20)
                    assert len(example.merged_items) >= 1
                    history.seen(user)
                    history.version(user)
                except Exception as error:  # pragma: no cover - fail signal
                    failures.append(error)
                    return

        readers = [threading.Thread(target=read_loop) for _ in range(3)]
        for thread in readers:
            thread.start()
        for _ in range(100):
            history.append(user, 2, behavior)
        stop.set()
        for thread in readers:
            thread.join(timeout=10.0)
        assert not failures

    def test_pickle_roundtrip_for_worker_fork(self, tiny_dataset, history):
        """The store crosses process boundaries (replica initargs); the lock
        must not travel, and the clone must keep working."""
        clone = pickle.loads(pickle.dumps(history))
        assert clone.users == history.users
        user = tiny_dataset.users[0]
        assert clone.example(user, max_len=50) == \
            history.example(user, max_len=50)
        clone.append(user, 1, tiny_dataset.schema.behaviors[0])
        assert clone.version(user) == 1
        assert history.version(user) == 0  # independent after the copy
