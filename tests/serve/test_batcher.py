"""Micro-batcher tests: size and timeout flush triggers, error paths."""

import threading
import time

import pytest

from repro.serve import MicroBatcher


def echo(payloads):
    return [payload * 2 for payload in payloads]


class TestTriggers:
    def test_size_trigger_flushes_full_batch(self):
        flushes = []
        # A generous wait so only the size trigger can fire first.
        with MicroBatcher(echo, max_batch=4, max_wait_ms=5_000.0,
                          on_flush=lambda size, delays: flushes.append(size)) as batcher:
            results = [None] * 4

            def call(slot):
                results[slot] = batcher.submit(slot)

            threads = [threading.Thread(target=call, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        assert sorted(results) == [0, 2, 4, 6]
        assert flushes == [4]

    def test_timeout_trigger_flushes_partial_batch(self):
        flushes = []
        with MicroBatcher(echo, max_batch=100, max_wait_ms=20.0,
                          on_flush=lambda size, delays: flushes.append(size)) as batcher:
            started = time.monotonic()
            assert batcher.submit(21) == 42
            elapsed = time.monotonic() - started
        assert flushes == [1]
        assert elapsed >= 0.015  # waited for the age trigger, not forever

    def test_queue_delays_reported(self):
        seen = {}

        def observe(size, delays):
            seen["size"] = size
            seen["delays"] = delays

        with MicroBatcher(echo, max_batch=1, max_wait_ms=1.0,
                          on_flush=observe) as batcher:
            batcher.submit(1)
        assert seen["size"] == 1
        assert len(seen["delays"]) == 1
        assert seen["delays"][0] >= 0.0


class TestErrors:
    def test_processing_error_propagates_to_caller(self):
        def broken(payloads):
            raise RuntimeError("encoder on fire")

        with MicroBatcher(broken, max_batch=2, max_wait_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="encoder on fire"):
                batcher.submit(1)

    def test_result_count_mismatch_detected(self):
        with MicroBatcher(lambda payloads: [], max_batch=1,
                          max_wait_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo, max_batch=2, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo, max_batch=2, max_wait_ms=1.0)
        batcher.close()
        batcher.close()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo, max_wait_ms=-1.0).close()
