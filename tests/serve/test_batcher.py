"""Micro-batcher tests: size and timeout flush triggers, error paths."""

import threading
import time

import pytest

from repro.serve import MicroBatcher


def echo(payloads):
    return [payload * 2 for payload in payloads]


class TestTriggers:
    def test_size_trigger_flushes_full_batch(self):
        flushes = []
        # A generous wait so only the size trigger can fire first.
        with MicroBatcher(echo, max_batch=4, max_wait_ms=5_000.0,
                          on_flush=lambda size, delays: flushes.append(size)) as batcher:
            results = [None] * 4

            def call(slot):
                results[slot] = batcher.submit(slot)

            threads = [threading.Thread(target=call, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        assert sorted(results) == [0, 2, 4, 6]
        assert flushes == [4]

    def test_timeout_trigger_flushes_partial_batch(self):
        flushes = []
        with MicroBatcher(echo, max_batch=100, max_wait_ms=20.0,
                          on_flush=lambda size, delays: flushes.append(size)) as batcher:
            started = time.monotonic()
            assert batcher.submit(21) == 42
            elapsed = time.monotonic() - started
        assert flushes == [1]
        assert elapsed >= 0.015  # waited for the age trigger, not forever

    def test_queue_delays_reported(self):
        seen = {}

        def observe(size, delays):
            seen["size"] = size
            seen["delays"] = delays

        with MicroBatcher(echo, max_batch=1, max_wait_ms=1.0,
                          on_flush=observe) as batcher:
            batcher.submit(1)
        assert seen["size"] == 1
        assert len(seen["delays"]) == 1
        assert seen["delays"][0] >= 0.0


class TestExactlyOnce:
    def test_age_flush_races_deliver_every_submit_exactly_once(self):
        """Hammer the age trigger: tiny max_wait with concurrent submitters
        must flush every payload exactly once — no duplicates, no drops."""
        flushed = []
        flush_lock = threading.Lock()

        def record(payloads):
            with flush_lock:
                flushed.extend(payloads)
            return [payload * 2 for payload in payloads]

        submitted = []
        results = []
        result_lock = threading.Lock()
        with MicroBatcher(record, max_batch=4, max_wait_ms=1.0) as batcher:

            def call(base):
                for offset in range(25):
                    value = base * 1000 + offset
                    result = batcher.submit(value)
                    with result_lock:
                        submitted.append(value)
                        results.append((value, result))

            threads = [threading.Thread(target=call, args=(base,))
                       for base in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert len(submitted) == 200
        assert sorted(flushed) == sorted(submitted)  # exactly-once multiset
        assert all(result == value * 2 for value, result in results)

    def test_close_drains_pending_submits(self):
        """Submits in flight when close() lands still get their results."""
        release = threading.Event()

        def slow(payloads):
            release.wait(10.0)
            return [payload * 2 for payload in payloads]

        batcher = MicroBatcher(slow, max_batch=10, max_wait_ms=5_000.0)
        results = {}

        def call(value):
            results[value] = batcher.submit(value)

        threads = [threading.Thread(target=call, args=(value,))
                   for value in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # let all three enqueue behind the age trigger

        def close_soon():
            time.sleep(0.05)
            release.set()

        threading.Thread(target=close_soon).start()
        batcher.close()  # must flush the pending batch, not drop it
        for thread in threads:
            thread.join(timeout=10.0)
        assert results == {0: 0, 1: 2, 2: 4}


class TestErrors:
    def test_processing_error_propagates_to_caller(self):
        def broken(payloads):
            raise RuntimeError("encoder on fire")

        with MicroBatcher(broken, max_batch=2, max_wait_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="encoder on fire"):
                batcher.submit(1)

    def test_result_count_mismatch_detected(self):
        with MicroBatcher(lambda payloads: [], max_batch=1,
                          max_wait_ms=1.0) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(echo, max_batch=2, max_wait_ms=1.0)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo, max_batch=2, max_wait_ms=1.0)
        batcher.close()
        batcher.close()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MicroBatcher(echo, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(echo, max_wait_ms=-1.0).close()
