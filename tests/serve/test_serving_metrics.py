"""Serving-metrics tests: histogram estimates and counter aggregation."""

import numpy as np
import pytest

from repro.serve import LatencyHistogram, ServingMetrics
from repro.serve.metrics import STAGES


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLatencyHistogram:
    def test_exact_aggregates(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.007 / 3)
        assert hist.max == 0.004

    def test_percentiles_bracket_the_data(self):
        hist = LatencyHistogram()
        values = np.random.default_rng(0).uniform(1e-4, 1e-1, size=500)
        for value in values:
            hist.record(float(value))
        p50 = hist.percentile(50.0)
        true_p50 = float(np.percentile(values, 50.0))
        # Factor-2 buckets bound the relative error at 2x.
        assert true_p50 / 2 <= p50 <= true_p50 * 2
        assert hist.percentile(99.0) <= hist.max
        assert hist.percentile(100.0) <= hist.max

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(50.0) == 0.0
        assert hist.mean == 0.0
        assert hist.snapshot()["count"] == 0

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101.0)


class TestServingMetrics:
    def test_counters_aggregate(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock)
        clock.now = 2.0
        metrics.record_request(0.010)
        metrics.record_request(0.020)
        metrics.record_error()
        metrics.record_batch(2, [0.001, 0.002])
        metrics.record_cache(True)
        metrics.record_cache(False)
        metrics.record_recall(0.8)
        assert metrics.qps() == pytest.approx(1.0)
        assert metrics.cache_hit_rate() == pytest.approx(0.5)
        assert metrics.mean_batch_size() == pytest.approx(2.0)
        assert metrics.mean_recall() == pytest.approx(0.8)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        assert snapshot["stages"]["queue"]["count"] == 2
        assert snapshot["stages"]["total"]["count"] == 2

    def test_snapshot_is_json_serializable(self):
        import json
        json.dumps(ServingMetrics(FakeClock()).snapshot())

    def test_report_lists_every_stage(self):
        metrics = ServingMetrics(FakeClock())
        metrics.record_stage("encode", 0.001)
        report = metrics.report()
        for stage in STAGES:
            assert stage in report
        assert "qps" in report
