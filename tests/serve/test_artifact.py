"""Artifact export/load round-trip and serving-encoder parity."""

import json

import numpy as np
import pytest

from repro.data.batching import collate
from repro.nn.tensor import no_grad
from repro.recommend import build_inference_example
from repro.serve import build_encoder, export_artifact, load_artifact
from repro.serve.artifact import ARTIFACT_FORMAT_VERSION


class TestRoundTrip:
    def test_manifest_fields(self, artifact, tiny_dataset, serving_model):
        assert artifact.family == "missl"
        assert artifact.num_items == tiny_dataset.num_items
        assert artifact.dim == serving_model.config.dim
        assert artifact.num_interests == serving_model.config.num_interests
        assert artifact.behaviors == tiny_dataset.schema.behaviors
        assert artifact.schema.target == tiny_dataset.schema.target
        assert artifact.extra == {"origin": "tests"}

    def test_item_table_matches_enhanced_representations(self, artifact,
                                                         serving_model):
        serving_model.eval()
        with no_grad():
            table = serving_model.item_representations().numpy()
        np.testing.assert_array_equal(artifact.item_table, table)
        np.testing.assert_array_equal(artifact.item_vectors(), table[1:])

    def test_training_only_subtrees_excluded(self, artifact):
        for name in artifact.params:
            assert not name.startswith(("item_embedding.", "hg_encoder."))
        assert any(name.startswith("seq_embedding.") for name in artifact.params)

    def test_export_restores_train_mode(self, serving_model, tmp_path):
        serving_model.train()
        export_artifact(serving_model, tmp_path / "mode.npz")
        assert serving_model.training
        serving_model.eval()

    def test_suffix_enforced(self, serving_model, tmp_path):
        path = export_artifact(serving_model, tmp_path / "artifact")
        assert path.suffix == ".npz"

    def test_rejects_non_missl(self, tmp_path):
        with pytest.raises(TypeError, match="MISSL"):
            export_artifact(object(), tmp_path / "bad.npz")

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro inference artifact"):
            load_artifact(path)

    def test_rejects_future_format(self, artifact_path, tmp_path):
        with np.load(artifact_path) as archive:
            arrays = dict(archive)
        meta = json.loads(bytes(arrays["__meta__"].tobytes()).decode())
        meta["format_version"] = ARTIFACT_FORMAT_VERSION + 1
        arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode(),
                                           dtype=np.uint8)
        path = tmp_path / "future.npz"
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unsupported"):
            load_artifact(path)


class TestEncoderParity:
    """The autodiff-free encoder must match the eval-mode model bitwise."""

    @pytest.fixture
    def batch(self, tiny_dataset):
        users = tiny_dataset.users[:6]
        examples = [build_inference_example(tiny_dataset, user)
                    for user in users]
        return collate(examples, tiny_dataset.schema)

    def test_interests_bitwise_equal(self, artifact, serving_model, batch):
        encoder = build_encoder(artifact)
        serving_model.eval()
        with no_grad():
            expected = serving_model.user_representation(batch).numpy()
        np.testing.assert_array_equal(encoder.interests(batch), expected)

    def test_behavior_interests_bitwise_equal(self, artifact, serving_model,
                                              batch):
        encoder = build_encoder(artifact)
        serving_model.eval()
        with no_grad():
            expected = serving_model.behavior_interests(batch)
        produced = encoder.behavior_interests(batch)
        assert set(produced) == set(expected)
        for key, value in expected.items():
            np.testing.assert_array_equal(produced[key], value.numpy())

    def test_unknown_family_rejected(self, artifact):
        from dataclasses import replace
        with pytest.raises(ValueError, match="no serving encoder"):
            build_encoder(replace(artifact, family="unheard-of"))
