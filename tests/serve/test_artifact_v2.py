"""Artifact v2 (directory-bundle) tests: mmap loading, prebuilt indexes,
format back-compat, and replica respawn from serialized structures."""

import json
import time

import numpy as np
import pytest

from repro.serve import (HistoryStore, NetClient, NetServer,
                         RecommenderService, ReplicaSet, export_artifact,
                         load_artifact, write_artifact)
from repro.serve.artifact import ARTIFACT_DIR_FORMAT_VERSION

PREBUILT = ("ivf", "hnsw", "pq", "ivf_pq", "exact_sq")
INDEX_OPTIONS = {"ivf": {"nlist": 8, "seed": 0},
                 "hnsw": {"M": 8, "seed": 0},
                 "pq": {"m": 4, "seed": 0},
                 "ivf_pq": {"m": 4, "nlist": 8, "seed": 0}}


@pytest.fixture(scope="module")
def bundle_path(serving_model, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_v2") / "model.artifact"
    return export_artifact(serving_model, path, extra={"origin": "tests"},
                           artifact_format="dir", prebuilt=PREBUILT,
                           index_options=INDEX_OPTIONS)


@pytest.fixture(scope="module")
def bundle(bundle_path):
    return load_artifact(bundle_path)


def recommendations(artifact, dataset, users, **options):
    service = RecommenderService(artifact, HistoryStore.from_dataset(dataset),
                                 **options)
    try:
        return {user: [(r.item, r.score) for r in service.recommend(user, k=5)]
                for user in users}
    finally:
        service.close()


class TestBundleLayout:
    def test_on_disk_structure(self, bundle_path):
        manifest = json.loads((bundle_path / "manifest.json").read_text())
        assert manifest["format"] == "dir"
        assert manifest["format_version"] == ARTIFACT_DIR_FORMAT_VERSION
        assert (bundle_path / "item_table.npy").is_file()
        for name in manifest["parameters"]:
            assert (bundle_path / "params" / f"{name}.npy").is_file()
        assert set(manifest["indexes"]) == set(PREBUILT)
        for backend, entry in manifest["indexes"].items():
            for array_name in entry["arrays"]:
                assert (bundle_path / "index" / backend
                        / f"{array_name}.npy").is_file()

    def test_arrays_are_memory_mapped(self, bundle):
        assert bundle.fmt == "dir"
        assert isinstance(bundle.item_table, np.memmap)
        assert all(isinstance(v, np.memmap) for v in bundle.params.values())
        for entry in bundle.prebuilt.values():
            assert all(isinstance(v, np.memmap)
                       for v in entry["arrays"].values())

    def test_mmap_false_loads_private_copies(self, bundle_path):
        eager = load_artifact(bundle_path, mmap=False)
        assert not isinstance(eager.item_table, np.memmap)
        assert all(not isinstance(v, np.memmap)
                   for v in eager.params.values())

    def test_matches_npz_export_bitwise(self, bundle, artifact):
        np.testing.assert_array_equal(np.asarray(bundle.item_table),
                                      artifact.item_table)
        assert set(bundle.params) == set(artifact.params)
        for name, value in artifact.params.items():
            np.testing.assert_array_equal(np.asarray(bundle.params[name]),
                                          value)
        assert bundle.config == artifact.config
        assert bundle.extra == artifact.extra


class TestFormatCompat:
    def test_legacy_npz_still_loads(self, artifact):
        assert artifact.fmt == "npz"
        assert artifact.prebuilt == {}
        assert artifact.source is not None

    def test_npz_rejects_prebuilt(self, artifact, tmp_path):
        with pytest.raises(ValueError, match="requires artifact_format='dir'"):
            write_artifact(artifact, tmp_path / "x.npz", prebuilt=("hnsw",))

    def test_unknown_format_rejected(self, artifact, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact format"):
            write_artifact(artifact, tmp_path / "x", artifact_format="tar")

    def test_unserializable_backend_rejected(self, artifact, tmp_path):
        with pytest.raises(ValueError, match="cannot be prebuilt"):
            write_artifact(artifact, tmp_path / "x", artifact_format="dir",
                           prebuilt=("exact",))

    def test_future_version_rejected(self, artifact, tmp_path):
        path = write_artifact(artifact, tmp_path / "bundle",
                              artifact_format="dir")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = ARTIFACT_DIR_FORMAT_VERSION + 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported"):
            load_artifact(path)

    def test_non_bundle_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a repro artifact bundle"):
            load_artifact(tmp_path)


class TestServingParity:
    """Every backend must answer identically from npz, mmap'd dir, and
    in-memory dir loads of the same export."""

    @pytest.mark.parametrize("backend", ["exact", "ivf", "hnsw", "pq",
                                         "ivf_pq", "exact_sq"])
    def test_topk_identical_across_formats(self, backend, bundle_path,
                                           artifact, tiny_dataset):
        users = tiny_dataset.users[:4]
        options = {"index_backend": backend,
                   "index_options": INDEX_OPTIONS.get(backend, {})}
        expected = recommendations(artifact, tiny_dataset, users, **options)
        mapped = recommendations(load_artifact(bundle_path), tiny_dataset,
                                 users, **options)
        eager = recommendations(load_artifact(bundle_path, mmap=False),
                                tiny_dataset, users, **options)
        assert mapped == expected
        assert eager == expected


class TestPrebuiltAttach:
    def test_runtime_options_attach_prebuilt(self, bundle, tiny_dataset):
        service = RecommenderService(
            bundle, HistoryStore.from_dataset(tiny_dataset),
            index_backend="hnsw", index_options={"ef_search": 48})
        try:
            info = service.stats()["index"]
            assert info["prebuilt"] is True
            assert info["ef_search"] == 48
            assert service.metrics.snapshot()["search"]["prebuilt_loads"] == 1
        finally:
            service.close()

    def test_structural_options_force_rebuild(self, bundle, tiny_dataset):
        service = RecommenderService(
            bundle, HistoryStore.from_dataset(tiny_dataset),
            index_backend="hnsw", index_options={"M": 4, "seed": 0})
        try:
            assert service.stats()["index"]["prebuilt"] is False
        finally:
            service.close()

    def test_use_prebuilt_false_forces_rebuild(self, bundle, tiny_dataset):
        service = RecommenderService(
            bundle, HistoryStore.from_dataset(tiny_dataset),
            index_backend="pq", use_prebuilt=False)
        try:
            assert service.stats()["index"]["prebuilt"] is False
        finally:
            service.close()

    @pytest.mark.parametrize("backend", ["ivf", "hnsw", "pq", "ivf_pq",
                                         "exact_sq"])
    def test_prebuilt_answers_match_fresh_build(self, backend, bundle,
                                                tiny_dataset):
        users = tiny_dataset.users[:4]
        attached = recommendations(bundle, tiny_dataset, users,
                                   index_backend=backend)
        rebuilt = recommendations(bundle, tiny_dataset, users,
                                  index_backend=backend, use_prebuilt=False,
                                  index_options=INDEX_OPTIONS.get(backend, {}))
        assert attached == rebuilt


class TestReplicaRespawnFromBundle:
    def test_killed_replica_reattaches_serialized_index(self, bundle,
                                                        tiny_dataset):
        backend = ReplicaSet(
            bundle, HistoryStore.from_dataset(tiny_dataset), replicas=2,
            pool_timeout=60.0,
            service_options={"index_backend": "hnsw",
                             "index_options": {"ef_search": 32}})
        server = NetServer(backend, max_inflight=16)
        host, port = server.start_background()
        users = tiny_dataset.users[:6]
        try:
            with NetClient(host, port) as client:
                before = {u: client.recommend(u, k=5) for u in users}
                assert all(r["ok"] for r in before.values())
            backend.kill_replica(0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if (backend.replicas[0].generation >= 1
                        and all(r.alive for r in backend.replicas)):
                    break
                time.sleep(0.1)
            assert all(r.alive for r in backend.replicas)
            assert backend.replicas[0].generation >= 1
            with NetClient(host, port) as client:
                for user in users:
                    after = client.recommend(user, k=5)
                    assert after["ok"]
                    assert after["items"] == before[user]["items"]
                    assert after["scores"] == before[user]["scores"]
        finally:
            server.stop()
            backend.close()
