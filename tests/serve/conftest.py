"""Shared serving fixtures: a trained-shape model, its exported artifact,
and a history store seeded from the tiny corpus."""

import pytest

from repro.core import MISSL, MISSLConfig
from repro.serve import HistoryStore, export_artifact, load_artifact

SERVE_CONFIG = MISSLConfig(dim=16, num_interests=3, max_len=20)


@pytest.fixture(scope="session")
def serving_model(tiny_dataset, tiny_graph):
    return MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                 SERVE_CONFIG, seed=0)


@pytest.fixture(scope="session")
def artifact_path(serving_model, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    return export_artifact(serving_model, path, extra={"origin": "tests"})


@pytest.fixture(scope="session")
def artifact(artifact_path):
    return load_artifact(artifact_path)


@pytest.fixture
def history(tiny_dataset):
    return HistoryStore.from_dataset(tiny_dataset)
