"""Quantized-retrieval tests: SQ/PQ quantizers, ADC scan, refine parity."""

import numpy as np
import pytest

from repro.serve import (ExactIndex, IVFPQIndex, PQIndex, ProductQuantizer,
                         ScalarQuantizer, SQIndex, build_index,
                         load_index_state, topk_overlap)


@pytest.fixture(scope="module")
def vectors():
    return np.random.default_rng(21).normal(size=(300, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(22).normal(size=(3, 16)).astype(np.float32)


class TestScalarQuantizer:
    def test_codes_within_int8(self, vectors):
        quantizer = ScalarQuantizer.fit(vectors)
        codes = quantizer.encode(vectors)
        assert codes.dtype == np.int8
        assert codes.min() >= -127 and codes.max() <= 127

    def test_decode_error_bounded(self, vectors):
        quantizer = ScalarQuantizer.fit(vectors)
        decoded = quantizer.decode(quantizer.encode(vectors))
        error = np.abs(decoded - vectors)
        assert (error <= quantizer.scale * 0.5 + 1e-6).all()

    def test_constant_dimension_survives(self):
        flat = np.ones((10, 4), dtype=np.float32)
        quantizer = ScalarQuantizer.fit(flat)
        np.testing.assert_allclose(quantizer.decode(quantizer.encode(flat)),
                                   flat, atol=1e-5)


class TestProductQuantizer:
    def test_shapes_and_dtypes(self, vectors):
        quantizer = ProductQuantizer.fit(vectors, m=4, seed=0)
        assert quantizer.codebooks.shape == (4, 256, 4)
        codes = quantizer.encode(vectors)
        assert codes.shape == (300, 4)
        assert codes.dtype == np.uint8

    def test_deterministic_given_seed(self, vectors):
        first = ProductQuantizer.fit(vectors, m=4, seed=3)
        second = ProductQuantizer.fit(vectors, m=4, seed=3)
        np.testing.assert_array_equal(first.codebooks, second.codebooks)

    def test_lookup_tables_match_decode(self, vectors, queries):
        quantizer = ProductQuantizer.fit(vectors, m=4, seed=0)
        codes = quantizer.encode(vectors)
        luts = quantizer.lookup_tables(queries)
        via_luts = np.zeros((3, 300), dtype=np.float32)
        for sub in range(quantizer.m):
            via_luts += luts[:, sub, codes[:, sub].astype(np.int64)]
        via_decode = queries @ quantizer.decode(codes).T
        np.testing.assert_allclose(via_luts, via_decode, rtol=1e-4, atol=1e-4)

    def test_rejects_bad_subspaces(self, vectors):
        with pytest.raises(ValueError, match="must divide dim"):
            ProductQuantizer.fit(vectors, m=5)
        with pytest.raises(ValueError, match="uint8"):
            ProductQuantizer.fit(vectors, m=4, ksub=512)


class TestSQIndex:
    def test_near_exact_recall(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        result = SQIndex(vectors).search(queries, k=10)
        assert topk_overlap(result.items, exact.items) >= 0.9
        assert result.candidates_scored == 300

    def test_full_refine_matches_exact_bitwise(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        refined = SQIndex(vectors).search(queries, k=10, refine=300)
        np.testing.assert_array_equal(refined.items, exact.items)
        np.testing.assert_array_equal(refined.scores, exact.scores)
        assert refined.refined == 300

    def test_exclusions_never_occupy_refine_slots(self, vectors, queries):
        index = SQIndex(vectors, refine=20)
        exclude = set(index.search(queries, k=5).items.tolist())
        result = index.search(queries, k=10, exclude=exclude)
        assert not exclude & set(result.items.tolist())

    def test_resident_bytes_4x_reduction(self, vectors):
        index = SQIndex(vectors)
        # Codes are exactly 4x smaller; scale/offset add O(dim) bytes that are
        # independent of catalog size.
        assert index.codes.nbytes * 4 == vectors.nbytes
        overhead = index.quantizer.scale.nbytes + index.quantizer.offset.nbytes
        assert index.resident_bytes() == index.codes.nbytes + overhead
        assert index.describe()["code_bytes_per_item"] == 16


class TestPQIndex:
    def test_refine_recovers_exact_topk(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        coarse = PQIndex(vectors, m=4, seed=0).search(queries, k=10)
        refined = PQIndex(vectors, m=4, seed=0, refine=64).search(queries, k=10)
        coarse_recall = topk_overlap(coarse.items, exact.items)
        refined_recall = topk_overlap(refined.items, exact.items)
        assert refined_recall >= coarse_recall
        assert refined_recall >= 0.9

    def test_refined_scores_are_exact(self, vectors, queries):
        refined = PQIndex(vectors, m=4, seed=0, refine=300).search(queries, k=10)
        exact = ExactIndex(vectors).search(queries, k=10)
        np.testing.assert_array_equal(refined.scores, exact.scores)

    def test_per_call_refine_override(self, vectors, queries):
        index = PQIndex(vectors, m=4, seed=0, refine=64)
        plain = index.search(queries, k=10, refine=0)
        assert plain.refined == 0 and plain.refine_seconds == 0.0
        deep = index.search(queries, k=10)
        assert deep.refined == 64 and deep.refine_seconds > 0.0
        assert index.refine == 64  # the constructor knob is untouched

    def test_code_memory_reduction(self, vectors):
        index = PQIndex(vectors, m=4, seed=0)
        # 4 bytes/item of codes vs 64 bytes/item of float32.
        assert index.codes.nbytes * 16 == vectors.nbytes

    def test_deterministic_given_seed(self, vectors, queries):
        first = PQIndex(vectors, m=4, seed=3).search(queries, k=10)
        second = PQIndex(vectors, m=4, seed=3).search(queries, k=10)
        np.testing.assert_array_equal(first.items, second.items)

    def test_rejects_bad_inputs(self, vectors, queries):
        with pytest.raises(ValueError, match="empty catalog"):
            PQIndex(vectors[:0], m=4)
        with pytest.raises(ValueError, match="k must be positive"):
            PQIndex(vectors, m=4).search(queries, k=0)


class TestIVFPQIndex:
    def test_prunes_candidates(self, vectors, queries):
        index = IVFPQIndex(vectors, m=4, nlist=16, nprobe=2, seed=0)
        result = index.search(queries, k=10)
        assert result.candidates_scored < 300

    def test_full_probe_refine_matches_exact(self, vectors, queries):
        exact = ExactIndex(vectors).search(queries, k=10)
        index = IVFPQIndex(vectors, m=4, nlist=8, nprobe=8, seed=0)
        refined = index.search(queries, k=10, refine=300)
        np.testing.assert_array_equal(refined.items, exact.items)
        np.testing.assert_array_equal(refined.scores, exact.scores)

    def test_exclusions_absent(self, vectors, queries):
        index = IVFPQIndex(vectors, m=4, nlist=8, nprobe=8, seed=0, refine=64)
        exclude = set(index.search(queries, k=5).items.tolist())
        result = index.search(queries, k=10, exclude=exclude)
        assert not exclude & set(result.items.tolist())

    def test_describe_reports_coarse_shape(self, vectors):
        index = IVFPQIndex(vectors, m=4, nlist=8, nprobe=3, seed=0)
        info = index.describe()
        assert info["nlist"] == 8 and info["nprobe"] == 3
        assert info["resident_bytes"] == index.resident_bytes()


class TestStateRoundTrip:
    @pytest.mark.parametrize("backend,options", [
        ("exact_sq", {}),
        ("pq", {"m": 4, "seed": 0, "refine": 32}),
        ("ivf_pq", {"m": 4, "nlist": 8, "seed": 0, "refine": 32}),
    ])
    def test_search_identical_after_round_trip(self, vectors, queries,
                                               backend, options):
        index = build_index(vectors, backend, **options)
        meta, arrays = index.state()
        clone = load_index_state(vectors, meta, arrays)
        original = index.search(queries, k=10, exclude={1, 2})
        restored = clone.search(queries, k=10, exclude={1, 2})
        np.testing.assert_array_equal(original.items, restored.items)
        np.testing.assert_array_equal(original.scores, restored.scores)
        assert clone.resident_bytes() == index.resident_bytes()

    def test_runtime_refine_applied_on_load(self, vectors, queries):
        index = PQIndex(vectors, m=4, seed=0)
        meta, arrays = index.state()
        clone = load_index_state(vectors, meta, arrays,
                                 options={"refine": 64})
        assert clone.refine == 64
        with pytest.raises(ValueError, match="cannot be applied"):
            load_index_state(vectors, meta, arrays, options={"m": 8})

    def test_unknown_backend_rejected(self, vectors):
        from repro.serve.quant import load_quant_state
        with pytest.raises(ValueError, match="unknown quantized backend"):
            load_quant_state(vectors, {"backend": "opq"}, {})
