"""CLI tests for the ``export`` and ``serve`` subcommands."""

import io
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.cli import _serve_request, build_parser, main
from repro.serve import NetClient, RecommenderService, load_artifact


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "artifact.npz"
    assert main(["export", str(path), "--preset", "taobao",
                 "--scale", "0.1", "--dim", "16", "--epochs", "1",
                 "--seed", "3"]) == 0
    return path


class TestParser:
    def test_export_parses(self):
        args = build_parser().parse_args(["export", "out.npz", "--scale", "0.1"])
        assert args.command == "export" and args.out == "out.npz"

    def test_serve_parses(self):
        args = build_parser().parse_args(
            ["serve", "art.npz", "--backend", "ivf", "--probe-every", "5"])
        assert args.command == "serve"
        assert args.backend == "ivf" and args.probe_every == 5

    def test_export_quant_flags_parse(self):
        args = build_parser().parse_args(
            ["export", "out", "--artifact-format", "dir",
             "--prebuild", "hnsw", "--prebuild", "pq", "--pq-m", "4"])
        assert args.artifact_format == "dir"
        assert args.prebuild == ["hnsw", "pq"] and args.pq_m == 4

    def test_serve_quant_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "art.npz", "--index", "pq", "--refine", "80"])
        assert args.index == "pq" and args.refine == 80

    def test_serve_telemetry_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "art.npz", "--events-out", "ev.jsonl",
             "--metrics-out", "metrics.json"])
        assert args.events_out == "ev.jsonl"
        assert args.metrics_out == "metrics.json"

    def test_train_events_out_parses(self):
        args = build_parser().parse_args(
            ["train", "--events-out", "ev.jsonl"])
        assert args.events_out == "ev.jsonl"


class TestServeRequest:
    @pytest.fixture
    def service(self, artifact, history):
        with RecommenderService(artifact, history, max_wait_ms=1.0) as svc:
            yield svc

    def test_recommend_op(self, service, tiny_dataset):
        user = tiny_dataset.users[0]
        response = _serve_request(service, {"op": "recommend", "user": user,
                                            "k": 3}, default_k=10)
        assert response["ok"] and len(response["items"]) == 3
        assert len(response["scores"]) == 3

    def test_recommend_is_the_default_op(self, service, tiny_dataset):
        response = _serve_request(service, {"user": tiny_dataset.users[0]},
                                  default_k=4)
        assert response["ok"] and len(response["items"]) == 4

    def test_append_and_stats_ops(self, service, tiny_dataset):
        user = tiny_dataset.users[0]
        behavior = tiny_dataset.schema.behaviors[0]
        appended = _serve_request(service, {"op": "append", "user": user,
                                            "item": 1, "behavior": behavior},
                                  default_k=10)
        assert appended == {"ok": True, "user": user, "version": 1}
        stats = _serve_request(service, {"op": "stats"}, default_k=10)
        assert stats["ok"] and "qps" in stats["stats"]
        report = _serve_request(service, {"op": "report"}, default_k=10)
        assert "stage" in report["report"]

    def test_unknown_op_raises(self, service):
        with pytest.raises(ValueError, match="unknown op"):
            _serve_request(service, {"op": "fly"}, default_k=10)


class TestEndToEnd:
    def test_export_records_provenance(self, exported):
        artifact = load_artifact(exported)
        assert artifact.extra == {"preset": "taobao", "scale": 0.1, "seed": 3}

    def test_serve_loop(self, exported, monkeypatch, capsys):
        artifact = load_artifact(exported)
        requests = "\n".join([
            json.dumps({"op": "stats"}),
            "",  # blank lines are skipped
            "not json",
            json.dumps({"op": "quit"}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", str(exported)]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        ready, stats, error = lines
        assert ready["ready"] and ready["num_items"] == artifact.num_items
        assert stats["ok"] and stats["stats"]["requests"] == 0
        assert not error["ok"]

    def test_serve_recommend_matches_direct_service(self, exported,
                                                    monkeypatch, capsys):
        from repro.data import DATASET_PRESETS, generate, k_core_filter
        from repro.serve import HistoryStore
        artifact = load_artifact(exported)
        dataset = k_core_filter(generate(DATASET_PRESETS["taobao"](0.1), seed=3))
        user = dataset.users[0]
        with RecommenderService(artifact, HistoryStore.from_dataset(dataset),
                                max_wait_ms=1.0) as svc:
            expected = [r.item for r in svc.recommend(user, k=5)]
        requests = "\n".join([
            json.dumps({"op": "recommend", "user": user, "k": 5}),
            json.dumps({"op": "quit"}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", str(exported)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert json.loads(lines[1])["items"] == expected

    def test_serve_corpus_mismatch_detected(self, exported, monkeypatch,
                                            capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", str(exported), "--scale", "0.3"]) == 2
        assert "mismatch" in capsys.readouterr().err

    def test_serve_metrics_out_dumps_final_snapshot(self, exported, tmp_path,
                                                    monkeypatch, capsys):
        from repro.data import DATASET_PRESETS, generate, k_core_filter
        dataset = k_core_filter(generate(DATASET_PRESETS["taobao"](0.1), seed=3))
        metrics_path = tmp_path / "metrics.json"
        requests = "\n".join([
            json.dumps({"op": "recommend", "user": dataset.users[0], "k": 3}),
            json.dumps({"op": "quit"}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", str(exported),
                     "--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert snapshot["requests"] == 1
        assert snapshot["errors"] == 0
        assert "stages" in snapshot and "total" in snapshot["stages"]

    def test_serve_events_out_renders_request_spans(self, exported, tmp_path,
                                                    monkeypatch, capsys):
        from repro.data import DATASET_PRESETS, generate, k_core_filter
        dataset = k_core_filter(generate(DATASET_PRESETS["taobao"](0.1), seed=3))
        events_path = tmp_path / "serve.jsonl"
        requests = "\n".join([
            json.dumps({"op": "recommend", "user": dataset.users[0], "k": 3}),
            json.dumps({"op": "quit"}),
        ])
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(["serve", str(exported),
                     "--events-out", str(events_path)]) == 0
        capsys.readouterr()
        assert main(["obs", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out and "serve.batch" in out
        assert "serve.encode" in out
        assert "serve.requests" in out  # counters from the final snapshot
        assert "serve.latency.total" in out


class TestNetworkFleet:
    """``--listen --replicas 2 --events-out``: fleet correlation end to end.

    The CLI's network mode installs signal handlers, so the test drives a
    real ``python -m repro serve`` subprocess: requests go over TCP, the
    fleet events come back through the main file plus the replica spools.
    """

    def serve_fleet(self, exported, tmp_path, requests):
        events_path = tmp_path / "net.jsonl"
        metrics_path = tmp_path / "net-metrics.json"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(exported),
             "--listen", "127.0.0.1:0", "--replicas", "2",
             "--events-out", str(events_path),
             "--metrics-out", str(metrics_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
        responses = []
        try:
            ready_line = []

            def read_ready():
                ready_line.append(process.stdout.readline())

            reader = threading.Thread(target=read_ready, daemon=True)
            reader.start()
            reader.join(timeout=180.0)
            assert ready_line and ready_line[0], (
                f"server never became ready: {process.stderr.read()!r}")
            ready = json.loads(ready_line[0])
            assert ready["ready"] and ready["replicas"] == 2
            with NetClient(ready["host"], ready["port"],
                           connect_retries=20) as client:
                for request in requests:
                    responses.append(client.request(request))
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=60.0)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        assert process.returncode == 0, process.stderr.read()
        return events_path, metrics_path, responses

    def test_request_ids_correlate_across_processes(self, exported, tmp_path,
                                                    capsys):
        from repro.data import DATASET_PRESETS, generate, k_core_filter
        from repro.obs import collect_fleet, read_events_tolerant
        dataset = k_core_filter(generate(DATASET_PRESETS["taobao"](0.1),
                                         seed=3))
        users = dataset.users[:4]
        requests = [{"op": "recommend", "user": user, "k": 3}
                    for user in users]
        requests.append({"op": "recommend"})  # malformed: no user
        events_path, metrics_path, responses = self.serve_fleet(
            exported, tmp_path, requests)

        for response in responses[:-1]:
            assert response["ok"], response
        error = responses[-1]
        assert not error["ok"]
        assert error["request_id"].startswith("req-")  # correlation token

        view = collect_fleet(events_path)
        roles = {p["role"] for p in view.processes}
        assert "main" in roles
        assert any(role.startswith("replica") for role in roles)

        spans = {s["span_id"]: s for s in view.spans}
        front = [s for s in view.spans if s["name"] == "net.request"]
        replica = [s for s in view.spans if s["name"] == "replica.request"]
        # the malformed request is rejected before dispatch: no span for it
        assert len(front) == len(users)
        assert len(replica) == len(users)
        # every replica-side span joins a front-end request's tree and
        # carries the same end-to-end request id
        for child in replica:
            assert child["proc"]["role"].startswith("replica")
            parent = spans[child["parent_id"]]
            assert parent["name"] == "net.request"
            assert child["trace_id"] == parent["trace_id"]
            assert child["request_id"] == parent["request_id"]
        assert all(s["request_id"].startswith("req-") for s in front)

        # merged fleet counters equal the sum of per-process counters
        expected: dict = {}
        for entry in view.processes:
            events, _ = read_events_tolerant(entry["file"])
            metric_events = [e for e in events if e.get("type") == "metrics"]
            if not metric_events:
                continue
            counters = metric_events[-1]["registry"].get("counters", {})
            for name, value in counters.items():
                expected[name] = expected.get(name, 0) + value
        assert any(name.startswith("serve.") for name in expected)
        for name, value in expected.items():
            assert view.registry.counter(name).value == value, name

        # --metrics-out carries the same merged fleet view
        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert snapshot["net"]["requests"] == len(users)  # dispatched only
        fleet_counters = snapshot["fleet"]["counters"]
        assert fleet_counters["fleet.processes"] == len(view.processes)

        # one obs invocation renders the fleet-spanning tree
        assert main(["obs", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "net.request" in out
        assert "replica.request" in out
        assert "serve.batch" in out  # replica-side spans in the same render
