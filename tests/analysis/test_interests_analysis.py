"""Tests for the interest-space analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (cluster_purity, interest_attention_report, interest_separation,
                            prototype_separation)
from repro.core import MISSL, MISSLConfig
from repro.data import collate


class TestSeparationMetrics:
    def test_orthogonal_is_zero(self):
        interests = np.eye(4)[None, :3, :]
        assert interest_separation(interests) == pytest.approx(0.0, abs=1e-9)

    def test_collapsed_is_one(self):
        vec = np.ones((1, 1, 5))
        interests = np.concatenate([vec, 2 * vec], axis=1)
        assert interest_separation(interests) == pytest.approx(1.0, rel=1e-6)

    def test_single_slot_zero(self, rng):
        assert interest_separation(rng.normal(size=(3, 1, 4))) == 0.0

    def test_accepts_2d_prototypes(self, rng):
        value = interest_separation(rng.normal(size=(4, 8)))
        assert 0.0 <= value <= 1.0

    def test_prototype_separation_on_model(self, tiny_dataset, tiny_graph):
        config = MISSLConfig(dim=16, num_interests=3, max_len=20)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        value = prototype_separation(model)
        assert 0.0 <= value <= 1.0


class TestClusterPurity:
    def test_pure_attention_scores_one(self):
        # 2 clusters; slot 0 attends only to cluster-0 items.
        attention = np.zeros((1, 4, 1))
        attention[0, :2, 0] = 0.5
        items = np.array([[1, 2, 3, 4]])
        valid = np.ones((1, 4), dtype=bool)
        clusters = np.array([0, 0, 1, 1])
        assert cluster_purity(attention, items, valid, clusters) == pytest.approx(1.0)

    def test_uniform_attention_scores_half(self):
        attention = np.full((1, 4, 1), 0.25)
        items = np.array([[1, 2, 3, 4]])
        valid = np.ones((1, 4), dtype=bool)
        clusters = np.array([0, 0, 1, 1])
        assert cluster_purity(attention, items, valid, clusters) == pytest.approx(0.5)

    def test_empty_rows_skipped(self):
        attention = np.ones((1, 3, 2))
        items = np.array([[1, 2, 3]])
        valid = np.zeros((1, 3), dtype=bool)
        assert cluster_purity(attention, items, valid, np.array([0, 1, 0])) == 0.0


class TestAttentionReport:
    def test_report_structure(self, tiny_dataset, tiny_graph, tiny_split):
        config = MISSLConfig(dim=16, num_interests=2, max_len=20)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        model.eval()
        batch = collate(tiny_split.test[:3], tiny_dataset.schema)
        report = interest_attention_report(model, batch, top_n=2)
        assert len(report) == 3 * 2  # users x slots
        for entry in report:
            assert set(entry) == {"user", "slot", "top_items", "top_weights"}
            assert len(entry["top_items"]) <= 2
            assert all(w >= 0 for w in entry["top_weights"])
