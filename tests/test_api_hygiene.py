"""API hygiene: every public module exports a coherent, documented surface.

These tests keep the library honest as it grows: ``__all__`` entries must
exist, public callables must carry docstrings, and the package façade
(``repro.<pkg>`` re-exports) must stay importable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro.nn", "repro.data", "repro.hypergraph", "repro.core",
            "repro.baselines", "repro.train", "repro.eval", "repro.experiments",
            "repro.utils", "repro.analysis", "repro.serve", "repro.obs"]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
class TestModuleSurface:
    def test_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_all_entries_exist(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_public_callables_documented(self, module):
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and getattr(obj, "__module__", "").startswith("repro"):
                assert inspect.getdoc(obj), f"{module.__name__}.{name} lacks a docstring"


class TestNoBarePrint:
    """Library code must log through ``repro.obs.get_logger``, not ``print``.

    ``print`` is reserved for the user-facing CLI surface (tables, JSON
    responses) and experiment report rendering; everything else should emit
    through the logging tree so telemetry sessions capture it.
    """

    ALLOWED = {"cli.py", "__main__.py"}
    ALLOWED_SUFFIXES = ("experiments/report.py",)

    def test_no_print_calls_outside_cli(self):
        import ast
        from pathlib import Path

        src = Path(repro.__file__).resolve().parent
        offenders = []
        for path in sorted(src.rglob("*.py")):
            relative = path.relative_to(src).as_posix()
            if path.name in self.ALLOWED or relative.endswith(self.ALLOWED_SUFFIXES):
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"):
                    offenders.append(f"{relative}:{node.lineno}")
        assert not offenders, (
            "bare print() in library code (use repro.obs.get_logger): "
            + ", ".join(offenders))


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_packages_importable(self):
        for package_name in PACKAGES:
            importlib.import_module(package_name)

    def test_cli_module_importable(self):
        from repro import cli
        assert callable(cli.main)

    def test_recommend_module_surface(self):
        from repro import recommend
        assert recommend.__doc__
        for name in recommend.__all__:
            obj = getattr(recommend, name)
            assert inspect.getdoc(obj), name
