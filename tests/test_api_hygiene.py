"""API hygiene: every public module exports a coherent, documented surface.

These tests keep the library honest as it grows: ``__all__`` entries must
exist, public callables must carry docstrings, and the package façade
(``repro.<pkg>`` re-exports) must stay importable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro.nn", "repro.data", "repro.hypergraph", "repro.core",
            "repro.baselines", "repro.train", "repro.eval", "repro.experiments",
            "repro.utils", "repro.analysis", "repro.serve", "repro.obs",
            "repro.lint"]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
class TestModuleSurface:
    def test_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_all_entries_exist(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_public_callables_documented(self, module):
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and getattr(obj, "__module__", "").startswith("repro"):
                assert inspect.getdoc(obj), f"{module.__name__}.{name} lacks a docstring"


class TestNoBarePrint:
    """Library code must log through ``repro.obs.get_logger``, not ``print``.

    The check itself now lives in :mod:`repro.lint` (the ``NO-BARE-PRINT``
    rule, which knows the allowed CLI/report surface); this test just runs
    that rule over the installed tree so the hygiene suite and the lint gate
    can never disagree.
    """

    def test_no_print_calls_outside_cli(self):
        from pathlib import Path

        from repro.lint import get_rule, lint_paths

        src = Path(repro.__file__).resolve().parent
        result = lint_paths([src], rules=[get_rule("NO-BARE-PRINT")])
        assert result.ok, (
            "bare print() in library code (use repro.obs.get_logger):\n"
            + "\n".join(f.render() for f in result.findings))


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_packages_importable(self):
        for package_name in PACKAGES:
            importlib.import_module(package_name)

    def test_cli_module_importable(self):
        from repro import cli
        assert callable(cli.main)

    def test_recommend_module_surface(self):
        from repro import recommend
        assert recommend.__doc__
        for name in recommend.__all__:
            obj = getattr(recommend, name)
            assert inspect.getdoc(obj), name
