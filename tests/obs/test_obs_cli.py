"""The ``python -m repro obs`` renderer: span trees and full event reports."""

from repro.cli import build_parser, main
from repro.obs import (get_logger, render_events, render_span_tree, span,
                       telemetry_session)


def make_span(span_id, name, seconds, parent_id=None, start=0.0, attrs=None):
    return {"type": "span", "span_id": span_id, "name": name,
            "seconds": seconds, "parent_id": parent_id, "start": start,
            "attrs": attrs or {}}


class TestRenderSpanTree:
    def test_nesting_and_order(self):
        spans = [
            make_span(2, "child.b", 0.2, parent_id=1, start=2.0),
            make_span(1, "root", 1.0, start=0.0),
            make_span(3, "child.a", 0.1, parent_id=1, start=1.0),
        ]
        lines = render_span_tree(spans).splitlines()
        assert lines[0].startswith("root (1.00s)")
        # children indented under the root, sorted by start time
        assert lines[1] == "  child.a (100.0ms)"
        assert lines[2] == "  child.b (200.0ms)"

    def test_attrs_rendered(self):
        (line,) = render_span_tree(
            [make_span(1, "stage", 0.5, attrs={"epoch": 3})]).splitlines()
        assert line == "stage (500.0ms) [epoch=3]"

    def test_orphan_surfaces_at_root(self):
        lines = render_span_tree(
            [make_span(7, "lost", 0.1, parent_id=99)]).splitlines()
        assert lines == ["lost (100.0ms)"]

    def test_large_sibling_groups_collapse(self):
        spans = [make_span(1, "epoch", 1.0, start=0.0)]
        spans += [make_span(10 + i, "step", 0.1, parent_id=1, start=float(i))
                  for i in range(8)]
        text = render_span_tree(spans, collapse_after=5)
        assert "step ×8 (total 800.0ms, mean 100.0ms)" in text
        assert text.count("step") == 1  # individual steps are not listed

    def test_small_groups_stay_expanded(self):
        spans = [make_span(i, "step", 0.1, start=float(i)) for i in range(3)]
        text = render_span_tree(spans, collapse_after=5)
        assert text.count("step (") == 3


class TestRenderEvents:
    def test_round_trip_through_session(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with telemetry_session(path) as telemetry:
            telemetry.registry.counter("demo.requests").inc(2)
            telemetry.registry.histogram("demo.latency").record(0.004)
            with span("outer", kind="demo"):
                with span("inner"):
                    pass
            telemetry.emit("epoch", epoch=0, train_loss=1.25,
                           train_seconds=2.0, eval_seconds=0.5, monitored=0.3)
            get_logger("repro.demo").info("checkpoint written")
        report = render_events(path)
        assert "trace (2 spans" in report
        assert "outer" in report and "  inner" in report
        assert "epochs:" in report and "1.2500" in report
        assert "metrics:" in report and "demo.requests" in report
        assert "demo.latency" in report
        assert "logs: 1 INFO" in report

    def test_empty_file_reports_no_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert "no events" in render_events(path)


class TestObsCommand:
    def test_parser_accepts_obs(self):
        args = build_parser().parse_args(["obs", "run.jsonl",
                                          "--collapse-after", "9"])
        assert args.command == "obs"
        assert args.events == "run.jsonl" and args.collapse_after == 9

    def test_cli_renders_event_log(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with telemetry_session(path):
            with span("work", n=1):
                pass
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace (1 spans" in out and "work" in out

    def test_cli_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such event log" in capsys.readouterr().err

    def test_cli_tolerates_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "span_id": 1, "name": "ok", '
                        '"seconds": 0.1, "parent_id": null}\n'
                        'not json\n'
                        '{"type": "span", "trunca', encoding="utf-8")
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "malformed_lines: 2" in out

    def test_train_events_out_end_to_end(self, tmp_path, capsys):
        events = tmp_path / "train.jsonl"
        assert main(["train", "--preset", "taobao", "--scale", "0.1",
                     "--dim", "16", "--epochs", "1", "--seed", "3",
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        assert main(["obs", str(events)]) == 0
        out = capsys.readouterr().out
        assert "train.fit" in out and "train.epoch" in out
        assert "eval.rank_all" in out and "hypergraph.build" in out
        assert "epochs:" in out
        assert "train.loss.total" in out  # health gauges in the snapshot
