"""Event sinks, telemetry sessions, JSON-lines files and log routing."""

import json

import pytest

from repro.obs import (EventSink, disable_telemetry, enable_telemetry,
                       get_logger, get_registry, get_telemetry, read_events,
                       span, telemetry_session)


class TestEventSink:
    def test_memory_sink_keeps_events(self):
        sink = EventSink()
        sink.emit({"type": "x", "n": 1})
        assert sink.events == [{"type": "x", "n": 1}]

    def test_file_sink_writes_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        sink.emit({"type": "a"})
        sink.emit({"type": "b", "value": 2})
        sink.close()
        assert [e["type"] for e in read_events(path)] == ["a", "b"]
        # file sinks default to not duplicating events in memory
        assert sink.events == []

    def test_emit_after_close_is_dropped(self, tmp_path):
        sink = EventSink(tmp_path / "events.jsonl")
        sink.close()
        sink.emit({"type": "late"})  # must not raise
        sink.close()  # idempotent

    def test_read_events_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "ok"}\n\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=":3:"):
            read_events(path)


class TestTelemetryLifecycle:
    def test_enable_disable(self):
        telemetry = enable_telemetry()
        assert get_telemetry() is telemetry
        disable_telemetry(final_snapshot=False)
        assert get_telemetry() is None

    def test_emit_stamps_type_and_ts(self):
        telemetry = enable_telemetry()
        telemetry.emit("custom", value=3)
        (event,) = telemetry.sink.events
        assert event["type"] == "custom" and event["value"] == 3
        assert event["ts"] > 0

    def test_default_registry_attached(self):
        telemetry = enable_telemetry()
        assert telemetry.registry is get_registry()

    def test_session_file_is_self_contained(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with telemetry_session(path) as telemetry:
            telemetry.registry.counter("demo.requests").inc(3)
            with span("demo.stage"):
                pass
        events = read_events(path)
        types = [e["type"] for e in events]
        assert "span" in types
        assert types[-1] == "metrics"  # final snapshot closes the file
        snapshot = events[-1]["registry"]
        assert snapshot["counters"]["demo.requests"] == 3

    def test_session_uninstalls_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with telemetry_session(tmp_path / "run.jsonl"):
                raise RuntimeError("boom")
        assert get_telemetry() is None


class TestLogRouting:
    def test_logger_records_become_events(self):
        telemetry = enable_telemetry()
        get_logger("repro.test").info("hello %s", "world")
        logs = [e for e in telemetry.sink.events if e["type"] == "log"]
        assert logs and logs[0]["message"] == "hello world"
        assert logs[0]["level"] == "INFO"
        assert logs[0]["logger"] == "repro.test"

    def test_logging_without_telemetry_is_silent_noop(self, capsys):
        get_logger("repro.test").info("no hub installed")
        # record still reaches stderr for humans
        assert "no hub installed" in capsys.readouterr().err

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("train").name == "repro.train"
        assert get_logger("repro.serve").name == "repro.serve"

    def test_events_are_json_serializable(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with telemetry_session(path):
            get_logger("repro.test").warning("careful")
        for event in read_events(path):
            json.dumps(event)  # round-trips
