"""Shared isolation for the observability tests.

Telemetry is a process-global hub and the default registry is process-wide
state; every test starts and ends with both clean so suites can run in any
order.
"""

import pytest

from repro.obs import disable_telemetry, get_registry


@pytest.fixture(autouse=True)
def clean_obs_state():
    disable_telemetry(final_snapshot=False)
    get_registry().reset()
    yield
    disable_telemetry(final_snapshot=False)
    get_registry().reset()
