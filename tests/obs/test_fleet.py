"""Fleet merge: exact counter sums, bucket-wise histogram merges, census."""

import json

import numpy as np
import pytest

from repro.obs import collect_fleet, merge_snapshots
from repro.obs.events import spool_dir_for
from repro.obs.fleet import merge_registry_snapshot
from repro.obs.metrics import Histogram, MetricsRegistry


def registry_with(counters=(), gauges=(), samples=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, values in samples:
        histogram = registry.histogram(name)
        for value in values:
            histogram.record(value)
    return registry


class TestMergeSnapshots:
    def test_counters_sum_across_processes(self):
        parts = [registry_with(counters=[("serve.requests", 3)]),
                 registry_with(counters=[("serve.requests", 5),
                                         ("serve.shed", 1)]),
                 registry_with(counters=[("serve.requests", 2)])]
        merged = merge_snapshots(p.snapshot() for p in parts)
        assert merged.counter("serve.requests").value == 10
        assert merged.counter("serve.shed").value == 1

    def test_histograms_merge_bucket_wise_exactly(self):
        rng = np.random.default_rng(0)
        batches = [rng.uniform(1e-5, 1.0, size=40) for _ in range(3)]
        parts = [registry_with(samples=[("net.request.seconds", batch)])
                 for batch in batches]
        merged = merge_snapshots(p.snapshot() for p in parts)

        reference = Histogram("net.request.seconds")
        for batch in batches:
            for value in batch:
                reference.record(value)
        got = merged.get("net.request.seconds").state()
        want = reference.state()
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"] == 120
        assert got["max"] == want["max"]
        assert got["total"] == pytest.approx(want["total"])
        # element-wise sum of the per-process buckets, not an approximation
        summed = np.sum([p.get("net.request.seconds").state()["counts"]
                         for p in parts], axis=0)
        assert list(summed) == got["counts"]

    def test_gauges_keep_last_writer_in_source_order(self):
        parts = [registry_with(gauges=[("train.loss.total", 0.9)]),
                 registry_with(gauges=[("train.loss.total", 0.4)])]
        merged = merge_snapshots(p.snapshot() for p in parts)
        assert merged.gauge("train.loss.total").value == 0.4

    def test_incompatible_histogram_bounds_raise(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=np.array([1.0, 2.0]))
        other = MetricsRegistry()
        other.histogram("h", bounds=np.array([1.0, 2.0, 4.0])).record(1.5)
        with pytest.raises(ValueError, match="incompatible"):
            merge_registry_snapshot(registry, other.snapshot())

    def test_stateless_histogram_snapshots_are_skipped(self):
        snapshot = {"histograms": {"h": {"count": 4, "mean": 1.0}}}
        merged = merge_snapshots([snapshot])
        assert merged.get("h") is None


class TestCollectFleet:
    def write_events(self, path, events):
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                if isinstance(event, str):
                    handle.write(event + "\n")
                else:
                    handle.write(json.dumps(event) + "\n")

    def metrics_event(self, registry, proc=None):
        event = {"type": "metrics", "ts": 0.0, "registry": registry.snapshot()}
        if proc is not None:
            event["proc"] = proc
        return event

    def test_merges_main_file_and_spools(self, tmp_path):
        main = tmp_path / "run.jsonl"
        main_registry = registry_with(counters=[("steps", 2)],
                                      samples=[("lat", [0.1, 0.2])])
        self.write_events(main, [
            {"type": "span", "ts": 0.0, "name": "net.request", "span_id": 1,
             "parent_id": None, "trace_id": 1, "start": 0.0, "seconds": 0.1},
            self.metrics_event(main_registry),
        ])
        spool_dir = spool_dir_for(main)
        worker = registry_with(counters=[("steps", 3)],
                               samples=[("lat", [0.4])])
        proc = {"role": "replica0", "worker": 0, "pid": 999, "generation": 1}
        self.write_events(spool_dir / "replica0-0-g1-999.jsonl", [
            {"type": "span", "ts": 0.0, "name": "worker.task", "span_id": 2,
             "parent_id": 1, "trace_id": 1, "start": 0.0, "seconds": 0.05,
             "proc": proc},
            self.metrics_event(worker, proc=proc),
        ])

        view = collect_fleet(main)
        assert view.registry.counter("steps").value == 5
        assert view.registry.get("lat").count == 3
        assert len(view.spans) == 2
        assert view.malformed_lines == 0
        roles = [(p["role"], p["worker"]) for p in view.processes]
        assert roles == [("main", None), ("replica0", 0)]
        assert view.registry.counter("fleet.processes").value == 2
        assert view.registry.counter("fleet.spans").value == 2

    def test_only_last_metrics_event_per_file_merges(self, tmp_path):
        main = tmp_path / "run.jsonl"
        early = registry_with(counters=[("steps", 7)])
        late = registry_with(counters=[("steps", 9)])
        self.write_events(main, [self.metrics_event(early),
                                 self.metrics_event(late)])
        view = collect_fleet(main)
        # snapshots are cumulative: merging both would double-count
        assert view.registry.counter("steps").value == 9

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        main = tmp_path / "run.jsonl"
        self.write_events(main, [
            {"type": "span", "ts": 0.0, "name": "s", "span_id": 1,
             "parent_id": None, "trace_id": 1, "start": 0.0, "seconds": 0.1},
            '{"type": "span", "truncated',
            "[1, 2, 3]",
        ])
        view = collect_fleet(main)
        assert len(view.spans) == 1
        assert view.malformed_lines == 2
        assert view.registry.counter("fleet.malformed_lines").value == 2
        assert view.processes[0]["malformed_lines"] == 2
