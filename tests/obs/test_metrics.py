"""Metrics registry semantics: counters, gauges, histograms, exporters."""

import numpy as np
import pytest

from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       get_registry, prometheus_text)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == pytest.approx(2.0)


class TestHistogram:
    def test_exact_count_mean_max(self):
        hist = Histogram("h")
        for value in [0.001, 0.002, 0.009]:
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.004)
        assert hist.max == pytest.approx(0.009)

    def test_percentiles_bounded_error(self):
        hist = Histogram("h")
        values = np.linspace(0.001, 0.1, 500)
        for value in values:
            hist.record(float(value))
        # factor-2 buckets bound percentile error at 2x
        p50 = hist.percentile(50.0)
        true_p50 = float(np.percentile(values, 50))
        assert true_p50 / 2 <= p50 <= true_p50 * 2
        assert hist.percentile(100.0) <= hist.max

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.percentile(99.0) == 0.0
        assert hist.snapshot()["count"] == 0

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101.0)

    def test_custom_bounds_and_cumulative_buckets(self):
        hist = Histogram("h", bounds=np.array([1.0, 10.0, 100.0]))
        for value in [0.5, 5.0, 50.0, 500.0]:
            hist.record(value)
        pairs = hist.bucket_counts()
        assert pairs == [(1.0, 1), (10.0, 2), (100.0, 3), (float("inf"), 4)]

    def test_snapshot_keys(self):
        hist = Histogram("h")
        hist.record(0.004)
        snapshot = hist.snapshot()
        assert set(snapshot) == {"count", "mean", "p50", "p90", "p99", "max",
                                 "state"}

    def test_percentile_upper_bounds_true_percentile(self):
        hist = Histogram("h")
        values = np.linspace(0.001, 0.1, 500)
        for value in values:
            hist.record(float(value))
        for p in (50.0, 90.0, 99.0):
            true = float(np.percentile(values, p))
            upper = hist.percentile_upper(p)
            assert upper >= true  # guaranteed upper bound...
            assert upper <= true * 2  # ...within the factor-2 bucketing
        assert hist.percentile_upper(100.0) == hist.max
        assert Histogram("e").percentile_upper(99.0) == 0.0

    def test_merge_state_is_exact(self):
        left, right, reference = Histogram("h"), Histogram("h"), Histogram("h")
        for i, value in enumerate(np.linspace(1e-5, 0.5, 200)):
            (left if i % 2 else right).record(float(value))
            reference.record(float(value))
        left.merge_state(right.state())
        assert left.count == reference.count
        assert left.total == pytest.approx(reference.total)
        assert left.max == reference.max
        assert left.bucket_counts() == reference.bucket_counts()
        assert left.percentile(99.0) == pytest.approx(
            reference.percentile(99.0))

    def test_merge_state_rejects_incompatible_bounds(self):
        hist = Histogram("h", bounds=np.array([1.0, 10.0]))
        other = Histogram("h", bounds=np.array([2.0, 20.0]))
        with pytest.raises(ValueError, match="incompatible"):
            hist.merge_state(other.state())

    def test_from_state_round_trips_through_json(self):
        import json

        hist = Histogram("h")
        for value in (0.001, 0.02, 0.3):
            hist.record(value)
        state = json.loads(json.dumps(hist.state()))
        rebuilt = Histogram.from_state("h", state)
        assert rebuilt.bucket_counts() == hist.bucket_counts()
        assert rebuilt.count == hist.count and rebuilt.max == hist.max


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3
        assert registry.names() == ["a", "b", "c"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            registry.gauge("x")

    def test_histogram_subclass_via_cls(self):
        from repro.serve.metrics import LatencyHistogram
        registry = MetricsRegistry()
        hist = registry.histogram("lat", cls=LatencyHistogram)
        assert isinstance(hist, LatencyHistogram)
        # base-class access still resolves (it IS a Histogram)
        assert registry.histogram("lat") is hist
        with pytest.raises(TypeError, match="must subclass Histogram"):
            registry.histogram("bad", cls=dict)

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(7.0)
        registry.histogram("lat").record(0.002)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 7.0}
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.reset()
        assert len(registry) == 0
        assert registry.get("a") is None

    def test_default_registry_is_process_wide(self):
        assert get_registry() is get_registry()


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(2)
        registry.gauge("train.loss.main").set(1.5)
        hist = registry.histogram("lat", bounds=np.array([0.01, 0.1]))
        hist.record(0.005)
        hist.record(0.05)
        text = prometheus_text(registry)
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests 2" in text
        assert "train_loss_main 1.5" in text
        assert 'lat_bucket{le="0.01"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text
        assert text.endswith("\n")

    def test_derived_quantiles_exported(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=np.array([0.01, 0.1]))
        hist.record(0.005)
        hist.record(0.05)
        text = prometheus_text(registry)
        assert "# TYPE lat_p50 gauge" in text
        assert "lat_p50 0.01" in text  # bucket upper bound, not interpolated
        assert "lat_p90 0.05" in text and "lat_p99 0.05" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
