"""Training-health monitors: NaN watchdog, loss tracker, gradient monitor."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import (GradientMonitor, LossComponentTracker, MetricsRegistry,
                       NaNWatchdog, NonFiniteGradientError, TrainerCallback,
                       enable_telemetry)


def fake_trainer(**grads):
    """A stand-in trainer whose model has one parameter per kwarg."""
    params = [(name, SimpleNamespace(data=np.ones(3), grad=grad))
              for name, grad in grads.items()]
    model = SimpleNamespace(named_parameters=lambda: list(params))
    return SimpleNamespace(model=model)


class TestNaNWatchdog:
    def test_clean_gradients_pass(self):
        trainer = fake_trainer(w=np.array([0.1, -0.2, 0.3]))
        NaNWatchdog().on_batch_end(trainer, 0, 0, 1.0, {})

    def test_nan_gradient_names_parameter(self):
        trainer = fake_trainer(ok=np.zeros(3),
                               bad=np.array([1.0, np.nan, 2.0]))
        watchdog = NaNWatchdog()
        with pytest.raises(NonFiniteGradientError, match="nan.*'bad'") as info:
            watchdog.on_batch_end(trainer, 2, 5, 1.0, {})
        assert info.value.parameter == "bad"
        assert (info.value.epoch, info.value.step) == (2, 5)

    def test_inf_gradient_distinguished(self):
        trainer = fake_trainer(bad=np.array([np.inf, 0.0, 0.0]))
        with pytest.raises(NonFiniteGradientError, match="inf"):
            NaNWatchdog().on_batch_end(trainer, 0, 0, 1.0, {})

    def test_non_finite_loss_caught_first(self):
        trainer = fake_trainer(w=np.zeros(3))
        with pytest.raises(NonFiniteGradientError, match="loss") as info:
            NaNWatchdog().on_batch_end(trainer, 1, 3, float("nan"), {})
        assert info.value.parameter is None

    def test_every_skips_intermediate_steps(self):
        trainer = fake_trainer(bad=np.array([np.nan]))
        watchdog = NaNWatchdog(every=2)
        watchdog.on_batch_end(trainer, 0, 0, 1.0, {})  # step 1: skipped
        with pytest.raises(NonFiniteGradientError):
            watchdog.on_batch_end(trainer, 0, 1, 1.0, {})

    def test_validates_every(self):
        with pytest.raises(ValueError):
            NaNWatchdog(every=0)


class TestLossComponentTracker:
    def test_per_epoch_means_and_gauges(self):
        registry = MetricsRegistry()
        tracker = LossComponentTracker(registry=registry)
        trainer = SimpleNamespace()
        tracker.on_epoch_start(trainer, 0)
        tracker.on_batch_end(trainer, 0, 0, 3.0, {"total": 3.0, "ssl": 1.0})
        tracker.on_batch_end(trainer, 0, 1, 1.0, {"total": 1.0, "ssl": 0.5})
        tracker.on_epoch_end(trainer, SimpleNamespace(epoch=0))
        assert tracker.epochs == [{"total": 2.0, "ssl": 0.75}]
        assert registry.gauge("train.loss.total").value == pytest.approx(2.0)
        assert registry.gauge("train.loss.ssl").value == pytest.approx(0.75)

    def test_curve_handles_missing_components(self):
        tracker = LossComponentTracker(registry=MetricsRegistry())
        trainer = SimpleNamespace()
        for epoch, breakdown in enumerate([{"total": 1.0, "aug": 0.2},
                                           {"total": 0.5}]):
            tracker.on_epoch_start(trainer, epoch)
            tracker.on_batch_end(trainer, epoch, 0, breakdown["total"], breakdown)
            tracker.on_epoch_end(trainer, SimpleNamespace(epoch=epoch))
        assert tracker.curve("total") == [1.0, 0.5]
        curve = tracker.curve("aug")
        assert curve[0] == 0.2 and np.isnan(curve[1])

    def test_emits_event_when_telemetry_on(self):
        telemetry = enable_telemetry()
        tracker = LossComponentTracker(registry=MetricsRegistry())
        trainer = SimpleNamespace()
        tracker.on_epoch_start(trainer, 0)
        tracker.on_batch_end(trainer, 0, 0, 1.0, {"total": 1.0})
        tracker.on_epoch_end(trainer, SimpleNamespace(epoch=0))
        events = [e for e in telemetry.sink.events
                  if e["type"] == "loss_components"]
        assert events and events[0]["means"] == {"total": 1.0}


class TestGradientMonitor:
    def test_norms_and_update_ratios(self):
        registry = MetricsRegistry()
        monitor = GradientMonitor(every=1, registry=registry)
        param = SimpleNamespace(data=np.array([3.0, 4.0]),
                                grad=np.array([0.6, 0.8]))
        params = [("emb", param)]
        model = SimpleNamespace(named_parameters=lambda: list(params))
        trainer = SimpleNamespace(model=model)
        monitor.on_batch_start(trainer, 0, 0)     # snapshot θ = (3, 4)
        param.data = np.array([3.0, 4.0]) - 0.1 * param.grad  # fake sgd step
        monitor.on_batch_end(trainer, 0, 0, 1.0, {})
        assert monitor.grad_norms["emb"] == [pytest.approx(1.0)]
        # ‖Δθ‖/‖θ‖ = 0.1·1.0 / 5.0 = 0.02
        assert monitor.last_ratios()["emb"] == pytest.approx(0.02)
        assert registry.gauge("train.grad.global_norm").value == pytest.approx(1.0)
        assert registry.gauge("train.grad.update_ratio.max").value == pytest.approx(0.02)

    def test_zero_or_poisoned_param_norm_reports_zero_ratio(self):
        # All-zero parameters make the ratio denominator 0 and a NaN-poisoned
        # parameter makes it non-finite; both must report 0.0, not nan/inf.
        registry = MetricsRegistry()
        monitor = GradientMonitor(every=1, registry=registry)
        zero = SimpleNamespace(data=np.zeros(3), grad=np.zeros(3))
        poisoned = SimpleNamespace(data=np.array([np.nan, 1.0]),
                                   grad=np.array([0.1, 0.1]))
        params = [("zero", zero), ("poisoned", poisoned)]
        model = SimpleNamespace(named_parameters=lambda: list(params))
        trainer = SimpleNamespace(model=model)
        monitor.on_batch_start(trainer, 0, 0)
        zero.data = np.full(3, 0.5)  # huge relative update from a zero start
        monitor.on_batch_end(trainer, 0, 0, 1.0, {})
        assert monitor.last_ratios()["zero"] == 0.0
        assert monitor.last_ratios()["poisoned"] == 0.0
        assert registry.gauge("train.grad.update_ratio.max").value == 0.0

    def test_every_controls_sampling(self):
        monitor = GradientMonitor(every=2, registry=MetricsRegistry())
        param = SimpleNamespace(data=np.ones(2), grad=np.ones(2))
        model = SimpleNamespace(named_parameters=lambda: [("w", param)])
        trainer = SimpleNamespace(model=model)
        for step in range(4):
            monitor.on_batch_start(trainer, 0, step)
            monitor.on_batch_end(trainer, 0, step, 1.0, {})
        assert len(monitor.grad_norms["w"]) == 2  # steps 0 and 2 only


class TestTrainerIntegration:
    def test_callbacks_drive_on_real_fit(self, tiny_dataset, tiny_graph,
                                         tiny_split):
        from repro.core import MISSL, MISSLConfig
        from repro.train import TrainConfig, Trainer
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        registry = MetricsRegistry()
        tracker = LossComponentTracker(registry=registry)
        monitor = GradientMonitor(every=1, registry=registry)

        calls = []

        class Recorder(TrainerCallback):
            def on_fit_start(self, trainer):
                calls.append("fit_start")

            def on_epoch_end(self, trainer, record):
                calls.append(("epoch_end", record.epoch))

            def on_fit_end(self, trainer, history):
                calls.append("fit_end")

        history = Trainer(model, tiny_split,
                          TrainConfig(epochs=2, patience=2, batch_size=32,
                                      num_eval_negatives=30),
                          callbacks=[NaNWatchdog(), tracker, monitor,
                                     Recorder()]).fit()
        assert calls[0] == "fit_start" and calls[-1] == "fit_end"
        assert ("epoch_end", 0) in calls and ("epoch_end", 1) in calls
        # MISSL's breakdown surfaces every loss component per epoch
        assert len(tracker.epochs) == history.num_epochs
        assert {"total", "main", "ssl"} <= set(tracker.epochs[0])
        assert all(np.isfinite(v) for v in tracker.epochs[0].values())
        # gradient health numbers exist and are finite
        ratios = monitor.last_ratios()
        assert ratios and all(np.isfinite(r) for r in ratios.values())
        assert registry.gauge("train.grad.global_norm").value > 0

    def test_callbacks_do_not_change_losses(self, tiny_dataset, tiny_graph,
                                            tiny_split):
        from repro.core import MISSL, MISSLConfig
        from repro.train import TrainConfig, Trainer
        losses = []
        for callbacks in ([], [LossComponentTracker(registry=MetricsRegistry())]):
            config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                                 num_train_negatives=8, lambda_aug=0.0)
            model = MISSL(tiny_dataset.num_items, tiny_dataset.schema,
                          tiny_graph, config, seed=3)
            history = Trainer(model, tiny_split,
                              TrainConfig(epochs=2, patience=2, seed=9,
                                          num_eval_negatives=30),
                              callbacks=callbacks).fit()
            losses.append(history.train_losses())
        assert np.allclose(losses[0], losses[1], rtol=1e-6)
