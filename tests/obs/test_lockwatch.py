"""Lock-order watchdog: cycle detection, stack discipline, disabled cost.

The headline test seeds the classic deadlock — two threads taking two locks
in opposite orders — and asserts the second order raises
:class:`LockOrderViolation` naming the cycle *instead of* deadlocking.  The
overhead test budgets the disabled fast path against a real training step,
the same 2% acceptance bar as the telemetry and sanitizer guards.
"""

import threading
import time

import pytest

from repro.obs import (LockOrderViolation, disable_lock_watch,
                       enable_lock_watch, get_lock_watch, watched_lock,
                       watched_rlock)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _watchdog_off_after():
    yield
    disable_lock_watch()


class TestCycleDetection:
    def test_consistent_order_builds_edges_silently(self):
        watch = enable_lock_watch()
        a, b = watched_lock("t.a"), watched_lock("t.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert watch.edges() == {"t.a": ("t.b",)}
        assert watch.cycle_count == 0

    def test_inverted_order_raises_instead_of_deadlocking(self):
        enable_lock_watch()
        a, b = watched_lock("t.a"), watched_lock("t.b")
        with a:
            with b:
                pass

        raised = []

        def inverted():
            try:
                with b:
                    with a:  # closes the t.a -> t.b cycle
                        pass
            except LockOrderViolation as error:
                raised.append(error)

        thread = threading.Thread(target=inverted)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(raised) == 1
        assert raised[0].cycle == ("t.a", "t.b", "t.a")
        assert "t.a" in str(raised[0]) and "t.b" in str(raised[0])

    def test_violation_leaves_the_wanted_lock_unacquired(self):
        enable_lock_watch()
        a, b = watched_lock("t.a"), watched_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()
        assert not a.locked()
        assert a.acquire(timeout=1.0)  # still usable once b is dropped
        a.release()

    def test_three_lock_cycle_is_detected(self):
        watch = enable_lock_watch()
        a, b, c = (watched_lock("t.a"), watched_lock("t.b"),
                   watched_lock("t.c"))
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockOrderViolation) as info:
            with c:
                with a:
                    pass
        assert info.value.cycle == ("t.a", "t.b", "t.c", "t.a")
        assert watch.cycle_count == 1


class TestStackDiscipline:
    def test_reentrant_rlock_adds_no_edge(self):
        watch = enable_lock_watch()
        r = watched_rlock("t.r")
        with r:
            with r:
                assert watch.held_names() == ("t.r",)
        assert watch.edges() == {}
        assert watch.held_names() == ()

    def test_release_pops_held_stack(self):
        watch = enable_lock_watch()
        a = watched_lock("t.a")
        with a:
            assert watch.held_names() == ("t.a",)
        assert watch.held_names() == ()

    def test_failed_timed_acquire_does_not_push(self):
        watch = enable_lock_watch()
        a = watched_lock("t.a")
        holder = threading.Event()
        release = threading.Event()

        def hold():
            with a:
                holder.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=hold)
        thread.start()
        assert holder.wait(timeout=10.0)
        assert a.acquire(timeout=0.05) is False
        assert watch.held_names() == ()
        release.set()
        thread.join(timeout=10.0)

    def test_same_name_different_instances_share_a_node(self):
        # Two instances of one class use the same role name; ordering
        # against another lock merges into a single graph node.
        watch = enable_lock_watch()
        first, second = watched_lock("t.pool"), watched_lock("t.pool")
        other = watched_lock("t.other")
        with first:
            with other:
                pass
        with second:
            with other:
                pass
        assert watch.edges() == {"t.pool": ("t.other",)}


class TestLifecycleAndExport:
    def test_disabled_by_default_and_idempotent_enable(self):
        assert get_lock_watch() is None
        watch = enable_lock_watch()
        assert enable_lock_watch() is watch
        disable_lock_watch()
        assert get_lock_watch() is None
        disable_lock_watch()  # idempotent

    def test_watched_lock_works_while_disabled(self):
        assert get_lock_watch() is None
        a = watched_lock("t.a")
        with a:
            assert a.locked()
        assert not a.locked()
        assert a.acquire()
        a.release()

    def test_export_flushes_counters_to_registry(self):
        watch = enable_lock_watch()
        a, b = watched_lock("t.a"), watched_lock("t.b")
        with a:
            with b:
                pass
        registry = MetricsRegistry()
        watch.export(registry)
        assert registry.counter("lockwatch.acquisitions").value == 2
        assert registry.counter("lockwatch.edges").value == 1
        assert registry.counter("lockwatch.cycles").value == 0
        # Counts reset after a flush; a second export adds nothing.
        watch.export(registry)
        assert registry.counter("lockwatch.acquisitions").value == 2


class TestDisabledOverhead:
    TOUCHES_PER_STEP = 20    # locks touched by one request/step, generous
    MAX_OVERHEAD_FRACTION = 0.02

    @staticmethod
    def _per_call_seconds(fn, iterations=50_000):
        fn()  # warm up
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - start) / iterations

    def test_disabled_watched_lock_under_two_percent_of_step(
            self, tiny_dataset, tiny_graph, tiny_split):
        from repro.core import MISSL, MISSLConfig
        from repro.train import TrainConfig, Trainer
        assert get_lock_watch() is None

        raw = threading.Lock()
        watched = watched_lock("bench.lock")

        def raw_cycle():
            with raw:
                pass

        def watched_cycle():
            with watched:
                pass

        added = max(0.0, self._per_call_seconds(watched_cycle)
                    - self._per_call_seconds(raw_cycle))

        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema,
                      tiny_graph, config, seed=0)
        trainer = Trainer(model, tiny_split,
                          TrainConfig(epochs=1, patience=1, batch_size=32,
                                      num_eval_negatives=30))
        start = time.perf_counter()
        history = trainer.fit()
        fit_seconds = time.perf_counter() - start
        steps = max(1, history.num_epochs)
        step_seconds = fit_seconds / steps

        budget = self.TOUCHES_PER_STEP * added
        assert budget < self.MAX_OVERHEAD_FRACTION * step_seconds, (
            f"disabled watched-lock budget {budget * 1e6:.1f}µs exceeds 2% "
            f"of a {step_seconds * 1e3:.1f}ms step")
