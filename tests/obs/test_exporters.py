"""Run manifests and environment provenance."""

import json

from repro.obs import git_revision, write_run_manifest


class TestRunManifest:
    def test_manifest_contents(self, tmp_path):
        path = write_run_manifest(tmp_path / "ck.npz.manifest.json",
                                  config={"dim": 16, "epochs": 3},
                                  seed=7,
                                  metrics={"NDCG@10": 0.12},
                                  extra={"model": "MISSL"})
        manifest = json.loads(path.read_text(encoding="utf-8"))
        assert manifest["config"] == {"dim": 16, "epochs": 3}
        assert manifest["seed"] == 7
        assert manifest["metrics"]["NDCG@10"] == 0.12
        assert manifest["extra"]["model"] == "MISSL"
        for key in ("created_at", "python", "numpy", "platform"):
            assert manifest[key]

    def test_defaults_are_empty_dicts(self, tmp_path):
        path = write_run_manifest(tmp_path / "m.json")
        manifest = json.loads(path.read_text(encoding="utf-8"))
        assert manifest["config"] == {} and manifest["metrics"] == {}

    def test_creates_parent_directories(self, tmp_path):
        path = write_run_manifest(tmp_path / "deep" / "dir" / "m.json")
        assert path.exists()

    def test_non_serializable_values_stringified(self, tmp_path):
        path = write_run_manifest(tmp_path / "m.json",
                                  config={"bounds": complex(1, 2)})
        manifest = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(manifest["config"]["bounds"], str)


class TestGitRevision:
    def test_sha_shape_in_this_checkout(self):
        sha = git_revision()
        # this repository is a git checkout; outside one None is acceptable
        if sha is not None:
            assert len(sha) == 40
            assert all(c in "0123456789abcdef" for c in sha)
