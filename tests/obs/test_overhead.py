"""Guard: disabled telemetry must cost (essentially) nothing.

The instrumentation contract is the same as :mod:`repro.perf`: when no hub
is installed every ``span()`` call is one global read plus a shared no-op
object.  This test budgets a *generous* number of span/``get_telemetry``
touches per training step against a real measured step time and asserts the
total stays under 2% — the acceptance bar from the telemetry design.
"""

import time

from repro.obs import get_telemetry, span

# One train step opens ~3 spans (step + shared fit/epoch amortized) and a
# handful of get_telemetry checks; 50 is an order of magnitude of headroom.
TOUCHES_PER_STEP = 50
MAX_OVERHEAD_FRACTION = 0.02


def _per_call_seconds(fn, iterations=20_000):
    fn()  # warm up
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


class TestDisabledOverhead:
    def test_disabled_span_under_two_percent_of_step(self, tiny_dataset,
                                                     tiny_graph, tiny_split):
        from repro.core import MISSL, MISSLConfig
        from repro.train import TrainConfig, Trainer
        assert get_telemetry() is None

        def disabled_span():
            with span("train.step", epoch=0, step=0):
                pass

        per_span = _per_call_seconds(disabled_span)
        per_check = _per_call_seconds(get_telemetry)

        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        trainer = Trainer(model, tiny_split,
                          TrainConfig(epochs=1, patience=1, batch_size=32,
                                      num_eval_negatives=30))
        start = time.perf_counter()
        history = trainer.fit()
        fit_seconds = time.perf_counter() - start
        steps = max(1, history.num_epochs)  # ≥1 optimizer step per epoch
        step_seconds = fit_seconds / steps

        budget = TOUCHES_PER_STEP * max(per_span, per_check)
        assert budget < MAX_OVERHEAD_FRACTION * step_seconds, (
            f"disabled telemetry budget {budget * 1e6:.1f}µs exceeds 2% of a "
            f"{step_seconds * 1e3:.1f}ms training step")

    def test_disabled_span_is_sub_microsecond_scale(self):
        assert get_telemetry() is None

        def disabled_span():
            with span("x"):
                pass

        # absolute backstop: a no-op span must stay in the ~µs range even on
        # slow CI (the fractional guard above is the real acceptance bar)
        assert _per_call_seconds(disabled_span) < 10e-6

    def test_instrumented_paths_run_without_hub(self):
        # the library-level instrumentation points must never require a hub
        from repro.obs import current_span
        with span("a"):
            with span("b") as inner:
                inner.set(k=1)
        assert current_span() is None

    def test_disabled_serving_path_under_two_percent(self, tiny_dataset,
                                                     tiny_graph, tmp_path):
        """The request-correlation hooks must stay invisible when disabled.

        A served request touches a handful of ``get_telemetry`` checks and
        ``current_context`` calls (front-end dispatch, batcher flush, replica
        emit); budget an order of magnitude more against one real in-process
        recommend and hold the 2% bar from the tentpole acceptance.
        """
        from repro.core import MISSL, MISSLConfig
        from repro.obs import current_context
        from repro.serve import (HistoryStore, RecommenderService,
                                 export_artifact, load_artifact)
        assert get_telemetry() is None
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      MISSLConfig(dim=16, num_interests=2, max_len=20), seed=0)
        artifact = load_artifact(export_artifact(model,
                                                 tmp_path / "model.npz"))
        history = HistoryStore.from_dataset(tiny_dataset)

        def disabled_request_touches():
            if get_telemetry() is None:
                pass
            current_context()
            with span("net.request", op="recommend"):
                pass

        # the front-end dispatch path has ~4 correlation touch-sites; each
        # bundle above is three of them, so 10 bundles is ~10x headroom
        per_request_budget = 10 * _per_call_seconds(disabled_request_touches)

        with RecommenderService(artifact, history, max_wait_ms=1.0) as service:
            users = history.users[:8]
            for user in users:  # warm caches/index before measuring
                service.recommend(user, k=5)
            start = time.perf_counter()
            for _ in range(3):
                for user in users:
                    service.recommend(user, k=5)
            request_seconds = (time.perf_counter() - start) / (3 * len(users))

        assert per_request_budget < MAX_OVERHEAD_FRACTION * request_seconds, (
            f"disabled request-path budget {per_request_budget * 1e6:.1f}µs "
            f"exceeds 2% of a {request_seconds * 1e3:.2f}ms recommend")

