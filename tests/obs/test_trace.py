"""Span tracing: nesting, timing, attributes, zero-cost disabled path."""

import threading
import time

from repro.obs import (current_span, enable_telemetry, get_telemetry, span,
                       telemetry_session)
from repro.obs.trace import _NOOP_SPAN


def span_events(telemetry):
    return [e for e in telemetry.sink.events if e["type"] == "span"]


class TestDisabled:
    def test_span_is_shared_noop_when_disabled(self):
        assert get_telemetry() is None
        s = span("anything", attr=1)
        assert s is _NOOP_SPAN
        assert span("other") is s  # no allocation per call

    def test_noop_span_usable_as_context_manager(self):
        with span("x") as s:
            assert s.set(k=1) is s
        assert current_span() is None


class TestEnabled:
    def test_span_emits_event_with_timing(self):
        telemetry = enable_telemetry()
        with span("work"):
            time.sleep(0.01)
        (event,) = span_events(telemetry)
        assert event["name"] == "work"
        assert event["parent_id"] is None
        assert event["seconds"] >= 0.01
        assert event["thread"] == threading.current_thread().name

    def test_nesting_records_parentage(self):
        telemetry = enable_telemetry()
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
            with span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert current_span() is None
        names = {e["name"]: e for e in span_events(telemetry)}
        assert names["inner"]["parent_id"] == names["outer"]["span_id"]
        assert names["sibling"]["parent_id"] == names["outer"]["span_id"]
        # children emit before the parent closes
        order = [e["name"] for e in span_events(telemetry)]
        assert order == ["inner", "sibling", "outer"]

    def test_span_ids_are_unique_and_increasing(self):
        enable_telemetry()
        ids = []
        for _ in range(5):
            with span("s") as s:
                ids.append(s.span_id)
        assert ids == sorted(set(ids))

    def test_attributes_init_and_set(self):
        telemetry = enable_telemetry()
        with span("stage", phase="encode") as s:
            s.set(items=42)
        (event,) = span_events(telemetry)
        assert event["attrs"] == {"phase": "encode", "items": 42}

    def test_exception_tagged_and_stack_unwound(self):
        telemetry = enable_telemetry()
        try:
            with span("bad"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (event,) = span_events(telemetry)
        assert event["attrs"]["error"] == "RuntimeError: boom"
        assert current_span() is None

    def test_threads_keep_separate_stacks(self):
        telemetry = enable_telemetry()
        seen = {}

        def worker():
            with span("worker.root") as s:
                seen["parent_id"] = s.parent_id

        with span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker's span must not adopt the main thread's open span
        assert seen["parent_id"] is None
        by_name = {e["name"]: e for e in span_events(telemetry)}
        assert by_name["worker.root"]["thread"] != by_name["main.root"]["thread"]


class TestSession:
    def test_session_scopes_enablement(self):
        with telemetry_session() as telemetry:
            assert get_telemetry() is telemetry
            with span("inside"):
                pass
        assert get_telemetry() is None
        assert [e["name"] for e in span_events(telemetry)] == ["inside"]
