"""Span tracing: nesting, timing, attributes, zero-cost disabled path."""

import threading
import time

from repro.obs import (current_context, current_span, enable_telemetry,
                       get_telemetry, remote_context, span, telemetry_session)
from repro.obs.trace import _NOOP_SPAN, TraceContext, reset_trace_state


def span_events(telemetry):
    return [e for e in telemetry.sink.events if e["type"] == "span"]


class TestDisabled:
    def test_span_is_shared_noop_when_disabled(self):
        assert get_telemetry() is None
        s = span("anything", attr=1)
        assert s is _NOOP_SPAN
        assert span("other") is s  # no allocation per call

    def test_noop_span_usable_as_context_manager(self):
        with span("x") as s:
            assert s.set(k=1) is s
        assert current_span() is None


class TestEnabled:
    def test_span_emits_event_with_timing(self):
        telemetry = enable_telemetry()
        with span("work"):
            time.sleep(0.01)
        (event,) = span_events(telemetry)
        assert event["name"] == "work"
        assert event["parent_id"] is None
        assert event["seconds"] >= 0.01
        assert event["thread"] == threading.current_thread().name

    def test_nesting_records_parentage(self):
        telemetry = enable_telemetry()
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
            with span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert current_span() is None
        names = {e["name"]: e for e in span_events(telemetry)}
        assert names["inner"]["parent_id"] == names["outer"]["span_id"]
        assert names["sibling"]["parent_id"] == names["outer"]["span_id"]
        # children emit before the parent closes
        order = [e["name"] for e in span_events(telemetry)]
        assert order == ["inner", "sibling", "outer"]

    def test_span_ids_are_unique_and_increasing(self):
        enable_telemetry()
        ids = []
        for _ in range(5):
            with span("s") as s:
                ids.append(s.span_id)
        assert ids == sorted(set(ids))

    def test_attributes_init_and_set(self):
        telemetry = enable_telemetry()
        with span("stage", phase="encode") as s:
            s.set(items=42)
        (event,) = span_events(telemetry)
        assert event["attrs"] == {"phase": "encode", "items": 42}

    def test_exception_tagged_and_stack_unwound(self):
        telemetry = enable_telemetry()
        try:
            with span("bad"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (event,) = span_events(telemetry)
        assert event["attrs"]["error"] == "RuntimeError: boom"
        assert current_span() is None

    def test_threads_keep_separate_stacks(self):
        telemetry = enable_telemetry()
        seen = {}

        def worker():
            with span("worker.root") as s:
                seen["parent_id"] = s.parent_id

        with span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker's span must not adopt the main thread's open span
        assert seen["parent_id"] is None
        by_name = {e["name"]: e for e in span_events(telemetry)}
        assert by_name["worker.root"]["thread"] != by_name["main.root"]["thread"]


class TestSession:
    def test_session_scopes_enablement(self):
        with telemetry_session() as telemetry:
            assert get_telemetry() is telemetry
            with span("inside"):
                pass
        assert get_telemetry() is None
        assert [e["name"] for e in span_events(telemetry)] == ["inside"]


class TestTraceContext:
    def test_pack_unpack_round_trip(self):
        ctx = TraceContext(trace_id=7, span_id=11, request_id="req-1")
        assert ctx.pack() == (7, 11, "req-1")
        assert TraceContext.unpack(ctx.pack()) == ctx

    def test_unpack_tolerates_json_list_form(self):
        ctx = TraceContext.unpack([3, 5, None])
        assert ctx == TraceContext(trace_id=3, span_id=5, request_id=None)

    def test_current_context_none_when_disabled_or_idle(self):
        assert get_telemetry() is None
        assert current_context() is None
        enable_telemetry()
        assert current_context() is None  # no span open

    def test_current_context_captures_innermost_span(self):
        enable_telemetry()
        with span("outer"):
            with span("inner") as inner:
                ctx = current_context()
        assert ctx == TraceContext(inner.trace_id, inner.span_id, None)

    def test_current_context_request_id_override(self):
        enable_telemetry()
        with span("serve") as s:
            ctx = current_context(request_id="req-9")
        assert ctx == TraceContext(s.trace_id, s.span_id, "req-9")

    def test_noop_span_drops_attribute_assignment(self):
        assert get_telemetry() is None
        with span("x") as s:
            s.request_id = "req-1"  # must not raise on the shared no-op
        assert not hasattr(_NOOP_SPAN, "request_id")


class TestRemoteContext:
    def test_root_span_parents_on_remote_context(self):
        telemetry = enable_telemetry()
        remote = TraceContext(trace_id=100, span_id=200, request_id="req-2")
        with remote_context(remote):
            with span("worker.task") as root:
                assert root.parent_id == 200
                assert root.trace_id == 100
                assert root.request_id == "req-2"
                with span("child") as child:
                    assert child.trace_id == 100
                    assert child.parent_id == root.span_id
        (child_event, root_event) = span_events(telemetry)
        assert root_event["parent_id"] == 200
        assert root_event["request_id"] == "req-2"
        assert child_event["request_id"] == "req-2"

    def test_accepts_packed_tuple_and_restores_on_exit(self):
        enable_telemetry()
        with remote_context((1, 2, None)):
            with span("inner") as s:
                assert s.parent_id == 2
        with span("after") as s:
            assert s.parent_id is None  # remote cleared on exit

    def test_none_context_is_noop(self):
        enable_telemetry()
        with remote_context(None):
            with span("root") as s:
                assert s.parent_id is None

    def test_remote_context_forwarded_by_current_context(self):
        enable_telemetry()
        with remote_context(TraceContext(1, 2, "req-3")):
            # no span open: a relay hop forwards its inherited position
            assert current_context() == TraceContext(1, 2, "req-3")
            assert current_context(request_id="req-4") == \
                TraceContext(1, 2, "req-4")

    def test_reset_trace_state_clears_stack_and_remote(self):
        enable_telemetry()
        stale = span("open").__enter__()
        with remote_context(TraceContext(1, 2, None)):
            reset_trace_state()
            assert current_span() is None
            assert current_context() is None
        # exiting the pre-reset span against the fresh stack is harmless
        stale.__exit__(None, None, None)
        assert current_span() is None
