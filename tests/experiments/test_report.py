"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments.report import CLAIMS, generate_experiments_md, load_result_csv
from repro.experiments.registry import EXPERIMENTS


class TestReport:
    def test_claims_cover_every_experiment(self):
        assert set(CLAIMS) == set(EXPERIMENTS)

    def test_load_result_csv(self, tmp_path):
        path = tmp_path / "T9.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        headers, rows = load_result_csv(path)
        assert headers == ["a", "b"]
        assert rows == [["1", "2"], ["3", "4"]]

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_result_csv(path)

    def test_generate_with_partial_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "T1.csv").write_text("dataset,users\ntaobao-like,100\n")
        output = generate_experiments_md(results, tmp_path / "EXPERIMENTS.md")
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "taobao-like" in text                       # committed result shown
        assert "no committed result" in text               # missing ones flagged
        for experiment_id in EXPERIMENTS:
            assert f"## {experiment_id}" in text

    def test_generated_claims_present(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        output = generate_experiments_md(results, tmp_path / "out.md")
        text = output.read_text()
        assert "headline claim" in text
