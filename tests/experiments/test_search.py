"""Tests for the grid-search driver."""

import pytest

from repro.core import MISSLConfig
from repro.data import SyntheticConfig
from repro.experiments import ExperimentContext, grid_search

TINY = SyntheticConfig(num_users=35, num_items=80, num_interests=3,
                       interests_per_user=2, min_target_events=3, name="search-test")


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.build(config=TINY, seed=5, max_len=15, num_negatives=30)


class TestGridSearch:
    def test_selects_by_validation(self, context):
        base = MISSLConfig(dim=16, max_len=15, num_train_negatives=8, lambda_aug=0.0)
        result = grid_search(context, {"num_interests": [1, 2]}, base=base,
                             epochs=2, seed=0)
        assert len(result.trials) == 2
        assert result.best_valid_metric == max(t["valid_metric"] for t in result.trials)
        assert result.best_config.num_interests in (1, 2)
        assert "NDCG@10" in result.test_report

    def test_multi_axis_product(self, context):
        base = MISSLConfig(dim=16, max_len=15, num_train_negatives=8,
                           lambda_aug=0.0, lambda_ssl=0.0)
        result = grid_search(context, {"num_interests": [1, 2],
                                       "lambda_disent": [0.0, 0.1]},
                             base=base, epochs=1, seed=0)
        assert len(result.trials) == 4
        combos = {(t["overrides"]["num_interests"], t["overrides"]["lambda_disent"])
                  for t in result.trials}
        assert len(combos) == 4

    def test_empty_grid_rejected(self, context):
        with pytest.raises(ValueError):
            grid_search(context, {})

    def test_summary_renders(self, context):
        base = MISSLConfig(dim=16, max_len=15, num_train_negatives=8, lambda_aug=0.0)
        result = grid_search(context, {"num_interests": [1]}, base=base,
                             epochs=1, seed=0)
        assert "trials" in result.summary()
