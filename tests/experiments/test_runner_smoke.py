"""Smoke tests of every experiment runner at minimal scale.

The benchmarks run the real configurations; these tests only verify that
each runner executes end to end, produces the advertised table shape, and
populates ``raw`` with what its benchmark asserts on.  Budget: 1-2 epochs at
scale 0.15, so the whole module stays fast.
"""

import pytest

from repro.experiments import run_experiment

SCALE = 0.15
EPOCHS = 2


class TestRunnerSmoke:
    def test_t2_minimal(self):
        result = run_experiment("T2", presets=("taobao",), scale=SCALE,
                                epochs=EPOCHS, models=("POP", "SASRec", "MISSL"))
        assert len(result.rows) == 3
        assert ("taobao", "MISSL") in result.raw

    def test_t3_minimal(self):
        result = run_experiment("T3", scale=SCALE, epochs=EPOCHS,
                                variants=("full", "w/o auxiliary"))
        assert [row[0] for row in result.rows] == ["full", "w/o auxiliary"]

    def test_f1_minimal(self):
        result = run_experiment("F1", scale=SCALE, epochs=EPOCHS, ks=(1, 2))
        assert result.column("K") == [1, 2]

    def test_f2_minimal(self):
        result = run_experiment("F2", scale=SCALE, epochs=1,
                                lambdas=(0.0, 0.1), temperatures=(0.3,))
        assert len(result.rows) == 2

    def test_f3_minimal(self):
        result = run_experiment("F3", scale=SCALE, epochs=1, depths=(0, 1),
                                dims=(16,))
        axes = {row[0] for row in result.rows}
        assert axes == {"hg_layers", "dim"}

    def test_f4_minimal(self):
        result = run_experiment("F4", scale=SCALE, epochs=EPOCHS,
                                models=("POP", "MISSL"))
        assert {row[0] for row in result.rows} <= {"POP", "MISSL"}
        assert len(result.rows) >= 2

    def test_f5_minimal(self):
        result = run_experiment("F5", scale=SCALE, epochs=1)
        # One row per behavior subset: target alone + one per auxiliary added.
        assert len(result.rows) == 4  # taobao has 3 auxiliary behaviors

    def test_f6_minimal(self):
        result = run_experiment("F6", scale=SCALE, epochs=1)
        assert ("proto_cosine", "with disent") in result.raw
        assert "separation_enhanced" in result.raw

    def test_f7_minimal(self):
        result = run_experiment("F7", scale=SCALE, epochs=2,
                                models=("SASRec", "MISSL"))
        assert set(result.raw) == {"SASRec", "MISSL"}
        assert len(result.raw["MISSL"]["curve"]) == 2

    def test_t4_minimal(self):
        result = run_experiment("T4", scale=SCALE, models=("SASRec", "MISSL"))
        assert result.raw["MISSL"]["params"] > result.raw["SASRec"]["params"]

    def test_a1_minimal(self):
        result = run_experiment("A1", scale=SCALE, epochs=1)
        assert {row[0] for row in result.rows} == {"attention", "routing"}

    def test_a2_minimal(self):
        result = run_experiment("A2", scale=SCALE, epochs=1, windows=(10,))
        labels = {row[0] for row in result.rows}
        assert "window=10" in labels and "no cross-behavior edges" in labels

    def test_a3_minimal(self):
        result = run_experiment("A3", scale=SCALE, epochs=1)
        assert {row[0] for row in result.rows} == {"POP", "ItemKNN", "BPRMF",
                                                   "LightGCN", "MISSL"}
