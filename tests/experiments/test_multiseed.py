"""Tests for multi-seed aggregation."""

import pytest

from repro.experiments.multiseed import aggregate_results, run_multi_seed
from repro.experiments.results import ExperimentResult


def make_result(values):
    return ExperimentResult("TX", "Demo", ["model", "NDCG@10"],
                            [["A", values[0]], ["B", values[1]]])


class TestAggregate:
    def test_mean_std_format(self):
        merged = aggregate_results([make_result([0.2, 0.4]), make_result([0.4, 0.6])])
        assert merged.rows[0][1] == "0.3000±0.1000"
        assert merged.rows[1][1] == "0.5000±0.1000"
        assert "2 seeds" in merged.title

    def test_key_columns_untouched(self):
        merged = aggregate_results([make_result([0.2, 0.4]), make_result([0.3, 0.5])])
        assert merged.rows[0][0] == "A"
        assert merged.rows[1][0] == "B"

    def test_shape_mismatch_rejected(self):
        a = make_result([0.1, 0.2])
        b = ExperimentResult("TX", "Demo", ["model"], [["A"]])
        with pytest.raises(ValueError):
            aggregate_results([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_single_result_zero_std(self):
        merged = aggregate_results([make_result([0.25, 0.5])])
        assert merged.rows[0][1] == "0.2500±0.0000"


class TestRunMultiSeed:
    def test_t1_across_seeds(self):
        merged = run_multi_seed("T1", seeds=(1, 2), scale=0.15)
        assert "±" in str(merged.rows[0][1])
        assert len(merged.rows) == 3
