"""Tests for the experiment framework (context, zoo, registry, results)."""

import numpy as np
import pytest

from repro.data import SyntheticConfig
from repro.experiments import (EXPERIMENTS, ExperimentContext, ExperimentResult,
                               MODEL_FAMILIES, build_model, model_names, run_experiment)

TINY = SyntheticConfig(num_users=40, num_items=90, num_interests=3,
                       interests_per_user=2, min_target_events=3, name="ctx-test")


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.build(config=TINY, seed=4, max_len=15, num_negatives=30)


class TestContext:
    def test_artifacts_consistent(self, context):
        assert context.split.dataset is context.dataset
        assert len(context.test_candidates) == len(context.split.test)
        assert context.graph.num_nodes == context.dataset.num_items + 1

    def test_train_view_has_no_holdout(self, context):
        target = context.dataset.schema.target
        for user in context.dataset.users[:10]:
            full = context.dataset.sequence(user, target)
            train = context.train_view.sequence(user, target)
            assert train == full[:-2]

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            ExperimentContext.build(preset="netflix")

    def test_restrict_behaviors(self, context):
        target = context.dataset.schema.target
        sub = context.restrict_behaviors((target,))
        assert sub.dataset.schema.behaviors == (target,)
        assert len(sub.split.test) > 0


class TestZoo:
    def test_all_models_build(self, context):
        for name in model_names():
            model = build_model(name, context, dim=8, seed=0)
            assert model is not None

    def test_unknown_model_rejected(self, context):
        with pytest.raises(KeyError):
            build_model("DeepFM", context)

    def test_families_cover_all(self):
        assert set(MODEL_FAMILIES) == set(model_names())
        assert MODEL_FAMILIES["MISSL"] == "ours"


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4",
                                    "F5", "F6", "F7", "A1", "A2", "A3"}

    def test_bench_targets_exist(self):
        from pathlib import Path
        repo_root = Path(__file__).resolve().parents[2]
        for exp in EXPERIMENTS.values():
            assert (repo_root / exp.bench_target).exists(), exp.bench_target

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("T99")


class TestRunnersSmoke:
    def test_t1_runs(self):
        result = run_experiment("T1", scale=0.15)
        assert result.experiment_id == "T1"
        assert len(result.rows) == 3

    def test_result_render_and_save(self, tmp_path):
        result = ExperimentResult("TX", "Demo", ["a", "b"], [[1, 0.5]])
        assert "TX" in result.render()
        path = result.save(tmp_path)
        assert path.exists()
        assert (tmp_path / "TX.csv").exists()
        assert result.column("b") == [0.5]
