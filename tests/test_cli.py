"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["stats"], ["train"], ["experiment", "T1"], ["list"],
                     ["compare", "SASRec", "MISSL"], ["profile"],
                     ["profile", "--reference", "--steps", "2"]):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "MISSL" in out

    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.15", "--preset", "yelp"]) == 0
        out = capsys.readouterr().out
        assert "users" in out and "view" in out

    def test_experiment_t1(self, capsys, tmp_path):
        assert main(["experiment", "T1", "--scale", "0.15",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "T1.csv").exists()
        assert "T1" in capsys.readouterr().out

    def test_train_unknown_model(self, capsys):
        assert main(["train", "--model", "DeepFM"]) == 2

    def test_train_pop_small(self, capsys, tmp_path):
        # POP is non-parametric: no training loop, runs in milliseconds.
        assert main(["train", "--model", "POP", "--scale", "0.15"]) == 0
        assert "POP" in capsys.readouterr().out

    def test_profile_unknown_model(self, capsys):
        assert main(["profile", "--model", "DeepFM"]) == 2

    def test_profile_parameter_free_model(self, capsys):
        assert main(["profile", "--model", "POP", "--scale", "0.15"]) == 2
        assert "nothing to profile" in capsys.readouterr().err

    def test_profile_small(self, capsys):
        assert main(["profile", "--model", "MBGRU", "--scale", "0.15",
                     "--steps", "1", "--dim", "16"]) == 0
        out = capsys.readouterr().out
        assert "s/step" in out
        assert "bwd ms" in out

    def test_compare_nonparametric(self, capsys):
        # POP vs ItemKNN: both non-parametric, so no training loop runs.
        assert main(["compare", "POP", "ItemKNN", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "paired bootstrap" in out
        assert "p=" in out
