"""Tests for the opt-in profiler and the seed reference mode."""

from __future__ import annotations

import numpy as np

from repro.hypergraph.incidence import reference_dtype_enabled
from repro.nn import functional as F
from repro.nn.scatter import get_scatter_backend
from repro.nn.tensor import Tensor, fast_accumulate_enabled
from repro.perf import (disable_profiling, enable_profiling, get_profiler,
                        profile_report, profiled, reference_mode, reset_profile)


class TestProfiler:
    def test_counts_nodes_and_backward(self, rng):
        with profiled() as profiler:
            x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
            y = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
            (x @ y).sum().backward()
        assert profiler.stats["matmul"].nodes == 1
        assert profiler.stats["matmul"].backward_calls == 1
        assert profiler.stats["matmul"].backward_seconds >= 0.0
        assert profiler.stats["sum"].nodes == 1
        assert profiler.stats["matmul"].output_bytes == 4 * 2 * x.data.itemsize

    def test_disabled_outside_context(self, rng):
        with profiled() as profiler:
            pass
        reset_profile()
        x = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        (x * x).sum().backward()
        assert not profiler.stats  # nothing recorded while disabled

    def test_report_renders_table(self, rng):
        with profiled():
            x = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
            (x * x).sum().backward()
        report = profile_report()
        assert "op" in report and "bwd ms" in report
        assert "mul" in report
        assert "total backward" in report

    def test_enable_disable_idempotent(self):
        first = enable_profiling()
        second = enable_profiling()
        assert first is second
        disable_profiling()
        assert get_profiler() is first  # stats stay readable after disable


class TestReferenceMode:
    def test_flips_all_knobs_and_restores(self):
        assert get_scatter_backend() == "fast"
        assert F.fused_ops_enabled()
        assert fast_accumulate_enabled()
        assert not reference_dtype_enabled()
        with reference_mode():
            assert get_scatter_backend() == "reference"
            assert not F.fused_ops_enabled()
            assert not fast_accumulate_enabled()
            assert reference_dtype_enabled()
        assert get_scatter_backend() == "fast"
        assert F.fused_ops_enabled()
        assert fast_accumulate_enabled()
        assert not reference_dtype_enabled()

    def test_restores_on_exception(self):
        try:
            with reference_mode():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_scatter_backend() == "fast"
        assert F.fused_ops_enabled()

    def test_training_losses_agree_across_modes(self, rng):
        # A small end-to-end forward/backward must produce the same loss and
        # the same leaf gradients on both paths (float32 tolerance).
        data = rng.standard_normal((8, 6)).astype(np.float32)
        gamma = rng.standard_normal(6).astype(np.float32)
        targets = rng.integers(0, 6, size=8)

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            g = Tensor(gamma.copy(), requires_grad=True)
            normed = F.layer_norm(x, g, Tensor(np.zeros(6, dtype=np.float32)))
            loss = F.softmax_cross_entropy(F.gelu(normed), targets)
            loss.backward()
            return float(loss.data), x.grad.copy(), g.grad.copy()

        fast = run()
        with reference_mode():
            reference = run()
        assert abs(fast[0] - reference[0]) < 1e-6
        np.testing.assert_allclose(fast[1], reference[1], atol=1e-6)
        np.testing.assert_allclose(fast[2], reference[2], atol=1e-6)

    def test_propagation_matrix_keeps_seed_dtype(self, tiny_graph):
        from repro.hypergraph.incidence import hgnn_propagation_matrix
        fast = hgnn_propagation_matrix(tiny_graph)
        assert fast.dtype == np.float32
        with reference_mode():
            seed = hgnn_propagation_matrix(tiny_graph)
        assert seed.dtype == np.float64
        np.testing.assert_allclose(fast.toarray(), seed.toarray(), atol=1e-6)
