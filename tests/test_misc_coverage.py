"""Miscellaneous coverage: small behaviors not owned by another test module."""

import numpy as np
import pytest

from repro.baselines import GRU4Rec, Popularity, SASRec
from repro.data import collate, pad_sequences
from repro.experiments.results import ExperimentResult
from repro.hypergraph import BuilderConfig, build_hypergraph


class TestCollateMaxLen:
    def test_explicit_max_len_trims(self, tiny_dataset, tiny_split):
        batch = collate(tiny_split.test[:4], tiny_dataset.schema, max_len=3)
        for behavior, matrix in batch.items.items():
            assert matrix.shape[1] <= 3
        assert batch.merged_items.shape[1] <= 3

    def test_pad_value_custom(self):
        matrix, _ = pad_sequences([[1]], max_len=3, pad_value=-1)
        assert matrix[0].tolist() == [-1, -1, 1]


class TestResultColumn:
    def test_unknown_column(self):
        result = ExperimentResult("TX", "t", ["a"], [[1]])
        with pytest.raises(ValueError):
            result.column("missing")


class TestPopularityScopes:
    def test_target_only_differs_from_all(self, toy_dataset):
        target_only = Popularity(toy_dataset.num_items).fit(toy_dataset,
                                                            target_only=True)
        everything = Popularity(toy_dataset.num_items).fit(toy_dataset,
                                                           target_only=False)
        assert not np.array_equal(target_only._counts, everything._counts)
        assert everything._counts.sum() == toy_dataset.num_interactions


class TestModelScopes:
    def test_scope_attributes(self, tiny_dataset):
        assert GRU4Rec(tiny_dataset.num_items, tiny_dataset.schema,
                       dim=8, seed=0).behavior_scope == "target"
        assert SASRec(tiny_dataset.num_items, tiny_dataset.schema, dim=8,
                      seed=0, behavior_scope="merged",
                      use_behavior_embedding=True).behavior_scope == "merged"


class TestHypergraphWholeSequence:
    def test_window_none_one_edge_per_behavior_sequence(self, toy_dataset):
        graph = build_hypergraph(toy_dataset, BuilderConfig(
            window=None, holdout_targets=0, include_cross_behavior=False))
        # toy: 3 users × up to 2 behaviors with >= 2 distinct items each.
        from repro.hypergraph import CROSS_BEHAVIOR_EDGE
        assert graph.num_edges >= 3
        assert not (graph.edge_behavior == CROSS_BEHAVIOR_EDGE).any()


class TestZooConsistency:
    def test_nonparametric_models_have_no_parameters(self, tiny_dataset):
        from repro.data import SyntheticConfig
        from repro.experiments import ExperimentContext, NONPARAMETRIC, build_model
        context = ExperimentContext.build(
            config=SyntheticConfig(num_users=30, num_items=70, num_interests=3,
                                   interests_per_user=2, name="zoo-check"),
            seed=2, num_negatives=20)
        for name in NONPARAMETRIC:
            model = build_model(name, context, dim=8, seed=0)
            assert model.parameters() == [], name

    def test_t2_models_subset_of_zoo(self):
        from repro.experiments import model_names
        from repro.experiments.runners import T2_MODELS
        assert set(T2_MODELS) <= set(model_names())
        assert "LightGCN" not in T2_MODELS and "BPRMF" not in T2_MODELS


class TestLossOptions:
    def test_info_nce_unnormalized(self, rng):
        from repro.nn import info_nce
        from repro.nn.tensor import Tensor
        a = Tensor(rng.normal(size=(6, 4)))
        normalized = info_nce(a, a, temperature=0.5, normalize=True).item()
        raw = info_nce(a, a, temperature=0.5, normalize=False).item()
        assert np.isfinite(raw)
        assert normalized != pytest.approx(raw)

    def test_bpr_broadcasts(self, rng):
        from repro.nn import bpr_loss
        from repro.nn.tensor import Tensor
        pos = Tensor(rng.normal(size=(5, 1)))
        neg = Tensor(rng.normal(size=(5, 7)))  # several negatives per positive
        loss = bpr_loss(pos, neg)
        assert loss.numpy().shape == ()


class TestAttentionPoolGrad:
    def test_gradcheck(self, rng, float64):
        from repro.nn import AdditiveAttentionPool
        from repro.nn.tensor import Tensor
        from repro.utils import gradcheck
        pool = AdditiveAttentionPool(4, 6, rng)
        x = Tensor(rng.normal(size=(2, 5, 4)), requires_grad=True)
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]], dtype=bool)
        gradcheck(lambda a: pool(a, mask), [x], atol=5e-4)
