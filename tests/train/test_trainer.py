"""Tests for the training loop, early stopping and history."""

import numpy as np
import pytest

from repro.core import MISSL, MISSLConfig
from repro.train import EpochRecord, History, TrainConfig, Trainer


@pytest.fixture
def small_model(tiny_dataset, tiny_graph):
    config = MISSLConfig(dim=16, num_interests=2, max_len=20, num_train_negatives=8,
                         lambda_aug=0.0)
    return MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph, config, seed=0)


class TestTrainer:
    def test_fit_produces_history(self, small_model, tiny_split):
        trainer = Trainer(small_model, tiny_split, TrainConfig(epochs=2, patience=2, batch_size=32,
                                                               num_eval_negatives=30))
        history = trainer.fit()
        assert history.num_epochs == 2
        assert all(np.isfinite(r.train_loss) for r in history.records)
        assert history.best_epoch >= 0
        assert all("NDCG@10" in r.valid_metrics for r in history.records)

    def test_early_stopping_triggers(self, small_model, tiny_split):
        trainer = Trainer(small_model, tiny_split,
                          TrainConfig(epochs=50, patience=1, batch_size=32,
                                      num_eval_negatives=30))
        history = trainer.fit()
        assert history.num_epochs < 50
        assert history.stopped_early

    def test_best_state_restored(self, tiny_dataset, tiny_graph, tiny_split):
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        trainer = Trainer(model, tiny_split, TrainConfig(epochs=3, patience=3, batch_size=32,
                                                         num_eval_negatives=30))
        history = trainer.fit()
        from repro.eval import evaluate_ranking
        report = evaluate_ranking(model, tiny_split.valid, trainer.valid_candidates,
                                  tiny_dataset.schema)
        assert report["NDCG@10"] == pytest.approx(history.best_metric, abs=1e-6)

    def test_model_in_eval_mode_after_fit(self, small_model, tiny_split):
        Trainer(small_model, tiny_split, TrainConfig(epochs=1, patience=1, num_eval_negatives=30)).fit()
        assert not small_model.training

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=0)

    def test_epoch_timing_split(self, small_model, tiny_split):
        history = Trainer(small_model, tiny_split,
                          TrainConfig(epochs=2, patience=2, batch_size=32,
                                      num_eval_negatives=30)).fit()
        for record in history.records:
            assert record.train_seconds > 0
            assert record.eval_seconds > 0
            # the split accounts for (almost all of) the epoch wall clock
            assert record.train_seconds + record.eval_seconds <= record.seconds
            assert (record.train_seconds + record.eval_seconds
                    >= 0.9 * record.seconds)
        assert history.total_train_seconds() + history.total_eval_seconds() \
            <= history.total_seconds()

    def test_reproducible_histories(self, tiny_dataset, tiny_graph, tiny_split):
        losses = []
        for _ in range(2):
            config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                                 num_train_negatives=8, lambda_aug=0.0)
            model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                          config, seed=3)
            history = Trainer(model, tiny_split,
                              TrainConfig(epochs=2, patience=2, seed=9,
                                          num_eval_negatives=30)).fit()
            losses.append(history.train_losses())
        assert np.allclose(losses[0], losses[1], rtol=1e-5)


class TestHistory:
    def test_accessors(self):
        history = History()
        history.append(EpochRecord(epoch=0, train_loss=1.0,
                                   valid_metrics={"NDCG@10": 0.2}, seconds=1.5))
        history.append(EpochRecord(epoch=1, train_loss=0.5,
                                   valid_metrics={"NDCG@10": 0.3}, seconds=1.0))
        assert history.train_losses() == [1.0, 0.5]
        assert history.metric_curve("NDCG@10") == [0.2, 0.3]
        assert history.total_seconds() == pytest.approx(2.5)
        assert np.isnan(history.metric_curve("missing")[0])


class TestCheckpointing:
    def test_best_checkpoint_written(self, tiny_dataset, tiny_graph, tiny_split,
                                     tmp_path):
        from repro.core import MISSL, MISSLConfig
        from repro.nn import load_checkpoint
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        path = tmp_path / "best.npz"
        trainer = Trainer(model, tiny_split,
                          TrainConfig(epochs=2, patience=2, num_eval_negatives=30,
                                      checkpoint_path=str(path)))
        history = trainer.fit()
        assert path.exists()
        clone = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=99)
        extra = load_checkpoint(clone, path)
        assert extra["epoch"] == history.best_epoch
        for (na, pa), (nb, pb) in zip(model.named_parameters(),
                                      clone.named_parameters()):
            assert np.allclose(pa.numpy(), pb.numpy()), na

    def test_run_manifest_written_next_to_checkpoint(self, tiny_dataset,
                                                     tiny_graph, tiny_split,
                                                     tmp_path):
        import json

        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        path = tmp_path / "best.npz"
        history = Trainer(model, tiny_split,
                          TrainConfig(epochs=2, patience=2, seed=4,
                                      num_eval_negatives=30,
                                      checkpoint_path=str(path))).fit()
        manifest_path = tmp_path / "best.npz.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["seed"] == 4
        assert manifest["config"]["epochs"] == 2
        assert manifest["metrics"]["best_epoch"] == history.best_epoch
        assert manifest["metrics"]["best_metric"] == pytest.approx(
            history.best_metric)
        assert manifest["extra"]["model"] == "MISSL"

    def test_no_manifest_without_checkpoint_path(self, small_model, tiny_split,
                                                 tmp_path):
        Trainer(small_model, tiny_split,
                TrainConfig(epochs=1, patience=1, num_eval_negatives=30)).fit()
        assert not list(tmp_path.glob("*.manifest.json"))


class TestLRSchedules:
    @pytest.mark.parametrize("schedule", ["warmup_cosine", "step"])
    def test_schedule_drives_lr(self, tiny_dataset, tiny_graph, tiny_split, schedule):
        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        history = Trainer(model, tiny_split,
                          TrainConfig(epochs=3, patience=3, num_eval_negatives=30,
                                      lr_schedule=schedule, warmup_epochs=1,
                                      step_size=2)).fit()
        lrs = [r.learning_rate for r in history.records]
        assert len(set(lrs)) > 1  # the learning rate actually moved

    def test_constant_is_default(self, tiny_dataset, tiny_graph, tiny_split):
        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        history = Trainer(model, tiny_split,
                          TrainConfig(epochs=2, patience=2,
                                      num_eval_negatives=30)).fit()
        lrs = {r.learning_rate for r in history.records}
        assert len(lrs) == 1

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(lr_schedule="cyclic")
