"""Tests for data-parallel training: shard decomposition, stochastic
reseeding, and the bitwise worker-count-independence guarantee."""

import numpy as np
import pytest

from repro.core import MISSL, MISSLConfig
from repro.data.pipeline import PackedExamples, fork_available
from repro.data.sampling import NegativeSampler
from repro.train import DataParallelEngine, TrainConfig, Trainer
from repro.train.ddp import discover_generators, reseed_stochastic, shard_rows


def _build_model(tiny_dataset, tiny_graph, seed=3):
    config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                         num_train_negatives=8, lambda_aug=0.0)
    return MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                 config, seed=seed)


class TestShardRows:
    def test_even_split(self):
        shards = shard_rows(np.arange(8), 4)
        assert [list(s) for s in shards] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_fewer_rows_than_shards(self):
        shards = shard_rows(np.arange(3), 4)
        assert [list(s) for s in shards] == [[0], [1], [2]]

    def test_order_preserved_under_concat(self):
        rows = np.array([9, 2, 7, 4, 1])
        shards = shard_rows(rows, 2)
        np.testing.assert_array_equal(np.concatenate(shards), rows)

    def test_no_empty_shards(self):
        assert all(s.size for s in shard_rows(np.arange(5), 16))


class TestReseedStochastic:
    def test_same_key_same_stream(self):
        a, b = np.random.default_rng(1), np.random.default_rng(2)
        reseed_stochastic([a], seed=5, epoch=1, step=2, shard=0)
        reseed_stochastic([b], seed=5, epoch=1, step=2, shard=0)
        np.testing.assert_array_equal(a.random(16), b.random(16))

    def test_different_shard_different_stream(self):
        a, b = np.random.default_rng(0), np.random.default_rng(0)
        reseed_stochastic([a], seed=5, epoch=1, step=2, shard=0)
        reseed_stochastic([b], seed=5, epoch=1, step=2, shard=1)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_reseed_is_in_place(self):
        # Modules share generator *objects*; the reseed must replace the
        # stream behind every shared reference, not rebind one of them.
        shared = np.random.default_rng(0)
        alias = shared
        reseed_stochastic([shared], seed=1, epoch=0, step=0, shard=0)
        expected = np.random.Generator(type(shared.bit_generator)(
            np.random.SeedSequence((1, 0, 0, 0, 0)))).random(8)
        np.testing.assert_array_equal(alias.random(8), expected)

    def test_generator_index_salts_the_key(self):
        a, b = np.random.default_rng(0), np.random.default_rng(0)
        reseed_stochastic([a, b], seed=1, epoch=0, step=0, shard=0)
        assert not np.array_equal(a.random(16), b.random(16))


class TestDiscoverGenerators:
    def test_model_generators_deduped(self, tiny_dataset, tiny_graph):
        model = _build_model(tiny_dataset, tiny_graph)
        generators = discover_generators(model)
        assert generators
        assert len({id(g) for g in generators}) == len(generators)
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_sampler_rng_included(self, tiny_dataset, tiny_graph):
        model = _build_model(tiny_dataset, tiny_graph)
        sampler = NegativeSampler(tiny_dataset, np.random.default_rng(11))
        generators = discover_generators(model, sampler)
        assert any(g is sampler.rng for g in generators)

    def test_order_stable(self, tiny_dataset, tiny_graph):
        model = _build_model(tiny_dataset, tiny_graph)
        first = discover_generators(model)
        second = discover_generators(model)
        assert [id(g) for g in first] == [id(g) for g in second]


def _fit(tiny_dataset, tiny_graph, tiny_split, num_workers):
    model = _build_model(tiny_dataset, tiny_graph)
    config = TrainConfig(epochs=2, patience=2, batch_size=32, seed=9,
                         num_eval_negatives=30, data_parallel=True,
                         grad_shards=4, num_workers=num_workers)
    history = Trainer(model, tiny_split, config).fit()
    return model, history


class TestBitwiseDeterminism:
    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_fit_matches_in_process_reference(self, tiny_dataset, tiny_graph,
                                              tiny_split, num_workers):
        reference_model, reference = _fit(tiny_dataset, tiny_graph, tiny_split,
                                          num_workers=0)
        model, history = _fit(tiny_dataset, tiny_graph, tiny_split,
                              num_workers=num_workers)
        for ref_record, record in zip(reference.records, history.records):
            assert record.train_loss == ref_record.train_loss
            assert record.valid_metrics == ref_record.valid_metrics
        reference_state = reference_model.state_dict()
        state = model.state_dict()
        assert state.keys() == reference_state.keys()
        for name in state:
            np.testing.assert_array_equal(state[name], reference_state[name])

    def test_engine_matches_serial_training_loss(self, tiny_dataset, tiny_graph,
                                                 tiny_split):
        # grad_shards=1, num_workers=0 degenerates to one full-batch shard:
        # the engine's decomposition overhead must not perturb the math.
        model = _build_model(tiny_dataset, tiny_graph)
        packed = PackedExamples.from_examples(tiny_split.train,
                                              tiny_dataset.schema)
        sampler = NegativeSampler(tiny_dataset, np.random.default_rng(9))
        with DataParallelEngine(model, sampler, packed, batch_size=32,
                                seed=9, grad_shards=1) as engine:
            rows = engine.epoch_chunks(0)[0]
            loss, _ = engine.step(0, 0, rows)
        assert np.isfinite(loss)
        flat = np.concatenate([p.grad.ravel() for p in model.parameters()
                               if p.grad is not None])
        assert np.isfinite(flat).all() and np.abs(flat).sum() > 0


class TestConfigSurface:
    def test_grad_shards_validated(self):
        with pytest.raises(ValueError):
            TrainConfig(grad_shards=0)

    def test_data_parallel_off_by_default(self):
        config = TrainConfig()
        assert config.data_parallel is False
        assert config.grad_shards == 4
