"""Tests for the serving-style recommend API."""

import numpy as np
import pytest

from repro.baselines import Popularity
from repro.recommend import Recommendation, build_inference_example, recommend, \
    recommend_batch


@pytest.fixture
def pop_model(tiny_dataset):
    return Popularity(tiny_dataset.num_items).fit(tiny_dataset, target_only=False)


class TestInferenceExample:
    def test_consumes_full_history(self, tiny_dataset):
        user = tiny_dataset.users[0]
        example = build_inference_example(tiny_dataset, user, max_len=100)
        for behavior in tiny_dataset.schema.behaviors:
            assert list(example.inputs[behavior]) == \
                tiny_dataset.sequence(user, behavior)[-100:]

    def test_max_len_truncates(self, tiny_dataset):
        user = tiny_dataset.users[0]
        example = build_inference_example(tiny_dataset, user, max_len=2)
        assert len(example.merged_items) <= 2

    def test_unknown_user_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_inference_example(tiny_dataset, 99_999)


class TestRecommend:
    def test_top_k_shape_and_order(self, tiny_dataset, pop_model):
        user = tiny_dataset.users[0]
        recs = recommend(pop_model, tiny_dataset, user, k=5)
        assert len(recs) == 5
        assert all(isinstance(r, Recommendation) for r in recs)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)
        assert [r.rank for r in recs] == list(range(5))

    def test_seen_items_excluded(self, tiny_dataset, pop_model):
        user = tiny_dataset.users[0]
        seen = tiny_dataset.items_of_user(user)
        recs = recommend(pop_model, tiny_dataset, user, k=10)
        assert not ({r.item for r in recs} & seen)

    def test_seen_items_allowed_when_disabled(self, tiny_dataset, pop_model):
        """With exclusion off, popularity recommends globally popular items,
        seen or not."""
        popularity = tiny_dataset.item_popularity()
        top_item = int(popularity.argmax())
        user = next(u for u in tiny_dataset.users
                    if top_item in tiny_dataset.items_of_user(u))
        recs = recommend(pop_model, tiny_dataset, user, k=3, exclude_seen=False)
        assert recs[0].item == top_item

    def test_batch_matches_single(self, tiny_dataset, pop_model):
        users = tiny_dataset.users[:3]
        batched = recommend_batch(pop_model, tiny_dataset, users, k=4)
        for user in users:
            single = recommend(pop_model, tiny_dataset, user, k=4)
            assert [r.item for r in single] == [r.item for r in batched[user]]

    def test_invalid_k(self, tiny_dataset, pop_model):
        with pytest.raises(ValueError):
            recommend(pop_model, tiny_dataset, tiny_dataset.users[0], k=0)

    def test_works_with_trained_missl(self, tiny_dataset, tiny_graph):
        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                             num_train_negatives=8, lambda_aug=0.0)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        recs = recommend(model, tiny_dataset, tiny_dataset.users[0], k=5, max_len=20)
        assert len(recs) == 5
        assert all(1 <= r.item <= tiny_dataset.num_items for r in recs)
