"""Shared fixtures.

Gradient-check tests need float64 precision; everything else runs on the
default float32.  The ``float64`` fixture flips the global default dtype and
restores it afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (BehaviorSchema, Interaction, MultiBehaviorDataset, SyntheticConfig,
                        TAOBAO_SCHEMA, generate, k_core_filter, leave_one_out_split)
from repro.nn.tensor import get_default_dtype, set_default_dtype


@pytest.fixture
def float64():
    """Run the test with float64 tensors (for finite-difference checks)."""
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


TINY_CONFIG = SyntheticConfig(
    num_users=60, num_items=120, num_interests=4, interests_per_user=2,
    sessions_per_user=5.0, session_length=5.0, target_per_session=0.7,
    min_target_events=3, name="tiny",
)


@pytest.fixture(scope="session")
def tiny_dataset() -> MultiBehaviorDataset:
    """A small but structurally complete corpus (session-scoped: read-only)."""
    return k_core_filter(generate(TINY_CONFIG, seed=7))


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return leave_one_out_split(tiny_dataset, max_len=20)


@pytest.fixture(scope="session")
def tiny_graph(tiny_dataset):
    from repro.hypergraph import build_hypergraph
    return build_hypergraph(tiny_dataset)


@pytest.fixture
def toy_dataset() -> MultiBehaviorDataset:
    """A 3-user hand-written corpus for exact assertions."""
    schema = BehaviorSchema(behaviors=("view", "buy"), target="buy")
    events = [
        Interaction(0, 1, "view", 1), Interaction(0, 2, "view", 2),
        Interaction(0, 1, "buy", 3), Interaction(0, 3, "view", 4),
        Interaction(0, 3, "buy", 5), Interaction(0, 2, "buy", 6),
        Interaction(1, 4, "view", 1), Interaction(1, 4, "buy", 2),
        Interaction(1, 5, "view", 3), Interaction(1, 5, "buy", 4),
        Interaction(1, 4, "buy", 5),
        Interaction(2, 2, "view", 1), Interaction(2, 2, "buy", 2),
        Interaction(2, 1, "view", 3), Interaction(2, 1, "buy", 4),
        Interaction(2, 5, "buy", 5),
    ]
    return MultiBehaviorDataset(events, schema, num_items=5, name="toy")
