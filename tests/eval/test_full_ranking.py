"""Tests for the full-catalog ranking protocol."""

import numpy as np
import pytest

from repro.core.base import SequentialRecommender
from repro.eval import evaluate_full_ranking, full_ranking_ranks
from repro.nn.tensor import Tensor


class FixedScores(SequentialRecommender):
    """Scores every item by a fixed global score vector (index = item id)."""

    def __init__(self, scores_by_item):
        super().__init__()
        self.scores_by_item = scores_by_item

    def score_candidates(self, batch, candidates):
        return Tensor(self.scores_by_item[candidates])


class TestFullRanking:
    def test_oracle_ranks_zero(self, tiny_dataset, tiny_split):
        scores = np.zeros(tiny_dataset.num_items + 1)
        # Give each test target the global top score... impossible for all at
        # once, so test per-single-example batches with a tailored oracle.
        example = tiny_split.test[0]
        scores[example.target] = 10.0
        model = FixedScores(scores)
        ranks = full_ranking_ranks(model, tiny_dataset, [example])
        assert ranks.tolist() == [0]

    def test_seen_items_excluded(self, tiny_dataset, tiny_split):
        """Items the user interacted with must not count as competitors."""
        example = tiny_split.test[0]
        seen = tiny_dataset.items_of_user(example.user) - {example.target}
        scores = np.zeros(tiny_dataset.num_items + 1)
        # Score every seen item above the target.  Seen items are masked out
        # of the candidate pool, so the target (50) only competes against
        # unseen items (0) and must rank first.
        for item in seen:
            scores[item] = 100.0
        scores[example.target] = 50.0
        model = FixedScores(scores)
        ranks = full_ranking_ranks(model, tiny_dataset, [example])
        assert ranks[0] == 0

    def test_worst_case_rank(self, tiny_dataset, tiny_split):
        example = tiny_split.test[0]
        scores = np.ones(tiny_dataset.num_items + 1)
        scores[example.target] = -5.0
        model = FixedScores(scores)
        ranks = full_ranking_ranks(model, tiny_dataset, [example])
        seen = tiny_dataset.items_of_user(example.user) - {example.target}
        expected_competitors = tiny_dataset.num_items - len(seen) - 1
        assert ranks[0] == expected_competitors

    def test_report_keys(self, tiny_dataset, tiny_split):
        scores = np.arange(tiny_dataset.num_items + 1, dtype=float)
        model = FixedScores(scores)
        report = evaluate_full_ranking(model, tiny_dataset, tiny_split.test[:10],
                                       ks=(10, 20))
        assert set(report) == {"HR@10", "NDCG@10", "HR@20", "NDCG@20", "MRR"}

    def test_full_harder_than_sampled(self, tiny_dataset, tiny_split, rng):
        """With random scores, full ranking gives (weakly) worse metrics than
        the sampled protocol because there are more competitors."""
        scores = rng.normal(size=tiny_dataset.num_items + 1)
        model = FixedScores(scores)
        full = evaluate_full_ranking(model, tiny_dataset, tiny_split.test, ks=(10,))
        from repro.eval import CandidateSets, evaluate_ranking
        sampled = evaluate_ranking(
            model, tiny_split.test,
            CandidateSets(tiny_dataset, tiny_split.test, 30, seed=0),
            tiny_dataset.schema, ks=(10,))
        assert full["HR@10"] <= sampled["HR@10"] + 1e-9
