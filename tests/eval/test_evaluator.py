"""Tests for the ranking evaluator and candidate-set protocol."""

import numpy as np
import pytest

from repro.core.base import SequentialRecommender
from repro.eval import (CandidateSets, EvalShardPool, MetricReport,
                        evaluate_ranking, precollate, rank_all)
from repro.nn.tensor import Tensor


class OracleModel(SequentialRecommender):
    """Scores the true target highest — must achieve perfect metrics."""

    def __init__(self, targets_by_user):
        super().__init__()
        self.targets = targets_by_user

    def score_candidates(self, batch, candidates):
        scores = np.zeros(candidates.shape)
        for row, user in enumerate(batch.users):
            scores[row] = (candidates[row] == self.targets[int(user)]).astype(float)
        return Tensor(scores)


class AntiOracleModel(OracleModel):
    """Scores the true target lowest — must achieve zero HR."""

    def score_candidates(self, batch, candidates):
        return Tensor(-super().score_candidates(batch, candidates).numpy())


class TestCandidateSets:
    def test_positive_first_and_negatives_unseen(self, tiny_dataset, tiny_split):
        sets = CandidateSets(tiny_dataset, tiny_split.test, num_negatives=30, seed=0)
        assert len(sets) == len(tiny_split.test)
        for example, row in zip(tiny_split.test, sets.candidates):
            assert row[0] == example.target
            user_items = tiny_dataset.items_of_user(example.user)
            assert not (set(row[1:].tolist()) & user_items)

    def test_deterministic_under_seed(self, tiny_dataset, tiny_split):
        a = CandidateSets(tiny_dataset, tiny_split.test, 20, seed=5)
        b = CandidateSets(tiny_dataset, tiny_split.test, 20, seed=5)
        assert np.array_equal(a.candidates, b.candidates)

    def test_slice(self, tiny_dataset, tiny_split):
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        rows = sets.slice(np.array([0, 2]))
        assert rows.shape == (2, 11)

    def test_empty_examples(self, tiny_dataset):
        sets = CandidateSets(tiny_dataset, [], 10, seed=0)
        assert len(sets) == 0


class TestEvaluator:
    def test_oracle_scores_perfectly(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        model = OracleModel(targets)
        sets = CandidateSets(tiny_dataset, tiny_split.test, 30, seed=0)
        report = evaluate_ranking(model, tiny_split.test, sets, tiny_dataset.schema)
        assert report["HR@5"] == 1.0
        assert report["NDCG@10"] == 1.0
        assert report["MRR"] == 1.0

    def test_anti_oracle_scores_zero(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        model = AntiOracleModel(targets)
        sets = CandidateSets(tiny_dataset, tiny_split.test, 30, seed=0)
        report = evaluate_ranking(model, tiny_split.test, sets, tiny_dataset.schema)
        assert report["HR@10"] == 0.0

    def test_rank_all_preserves_order(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        sets = CandidateSets(tiny_dataset, tiny_split.test, 30, seed=0)
        ranks = rank_all(OracleModel(targets), tiny_split.test, sets,
                         tiny_dataset.schema, batch_size=7)
        assert ranks.shape == (len(tiny_split.test),)
        assert (ranks == 0).all()

    def test_misaligned_candidates_rejected(self, tiny_dataset, tiny_split):
        sets = CandidateSets(tiny_dataset, tiny_split.test[:2], 10, seed=0)
        with pytest.raises(ValueError):
            rank_all(OracleModel({}), tiny_split.test, sets, tiny_dataset.schema)

    def test_model_left_in_train_mode(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        model = OracleModel(targets)
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        evaluate_ranking(model, tiny_split.test, sets, tiny_dataset.schema)
        assert model.training

    def test_eval_mode_model_stays_in_eval_mode(self, tiny_dataset, tiny_split):
        # Evaluating a model that is already in eval mode must not flip it
        # back to training (which would invalidate inference caches).
        targets = {e.user: e.target for e in tiny_split.test}
        model = OracleModel(targets)
        model.eval()
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        rank_all(model, tiny_split.test, sets, tiny_dataset.schema)
        assert not model.training

    def test_precollated_batches_match_direct(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        model = OracleModel(targets)
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        batches = precollate(tiny_split.test, sets, tiny_dataset.schema,
                             batch_size=7)
        direct = rank_all(model, tiny_split.test, sets, tiny_dataset.schema,
                          batch_size=7)
        cached = rank_all(model, tiny_split.test, sets, tiny_dataset.schema,
                          precollated=batches)
        assert np.array_equal(direct, cached)

    def test_precollate_misaligned_rejected(self, tiny_dataset, tiny_split):
        sets = CandidateSets(tiny_dataset, tiny_split.test[:2], 10, seed=0)
        with pytest.raises(ValueError):
            precollate(tiny_split.test, sets, tiny_dataset.schema)


class TestShardedEvaluation:
    """Sharded (num_workers > 0) paths must reproduce serial results exactly."""

    def test_sharded_precollate_matches_serial(self, tiny_dataset, tiny_split):
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        serial = precollate(tiny_split.test, sets, tiny_dataset.schema,
                            batch_size=7)
        sharded = precollate(tiny_split.test, sets, tiny_dataset.schema,
                             batch_size=7, num_workers=2)
        assert len(serial) == len(sharded)
        for (a, ca), (b, cb) in zip(serial, sharded):
            assert (a.users == b.users).all()
            assert (a.merged_items == b.merged_items).all()
            assert np.array_equal(ca, cb)

    def test_sharded_rank_all_matches_serial(self, tiny_dataset, tiny_split):
        targets = {e.user: e.target for e in tiny_split.test}
        model = OracleModel(targets)
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        serial = rank_all(model, tiny_split.test, sets, tiny_dataset.schema,
                          batch_size=7)
        sharded = rank_all(model, tiny_split.test, sets, tiny_dataset.schema,
                           batch_size=7, num_workers=2)
        assert np.array_equal(serial, sharded)

    def test_sharded_rank_all_with_real_model(self, tiny_dataset, tiny_split,
                                              tiny_graph):
        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=3, max_len=20,
                             num_train_negatives=10)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        model.eval()
        sets = CandidateSets(tiny_dataset, tiny_split.test, 10, seed=0)
        serial = evaluate_ranking(model, tiny_split.test, sets,
                                  tiny_dataset.schema, batch_size=7)
        sharded = evaluate_ranking(model, tiny_split.test, sets,
                                   tiny_dataset.schema, batch_size=7,
                                   num_workers=2)
        assert dict(serial) == dict(sharded)
        assert not model.training


class TestEvalShardPool:
    """The persistent pool must track live parent weights across passes."""

    def _model_and_batches(self, tiny_dataset, tiny_split, tiny_graph):
        from repro.core import MISSL, MISSLConfig
        config = MISSLConfig(dim=16, num_interests=3, max_len=20,
                             num_train_negatives=10)
        model = MISSL(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                      config, seed=0)
        sets = CandidateSets(tiny_dataset, tiny_split.valid, 10, seed=0)
        batches = precollate(tiny_split.valid, sets, tiny_dataset.schema,
                             batch_size=7)
        return model, sets, batches

    def test_matches_serial_across_parameter_updates(self, tiny_dataset,
                                                     tiny_split, tiny_graph):
        model, sets, batches = self._model_and_batches(tiny_dataset, tiny_split,
                                                       tiny_graph)
        with EvalShardPool(model, batches, num_workers=2) as pool:
            serial = rank_all(model, tiny_split.valid, sets,
                              tiny_dataset.schema, precollated=batches)
            assert np.array_equal(pool.rank_all(), serial)
            # Perturb the parent's weights the way an optimizer step would;
            # the next pass must rank with the *new* weights.
            for param in model.parameters():
                param.data += 0.05
            serial = rank_all(model, tiny_split.valid, sets,
                              tiny_dataset.schema, precollated=batches)
            assert np.array_equal(pool.rank_all(), serial)
            report = pool.evaluate(ks=(5, 10))
            assert dict(report) == dict(MetricReport.from_ranks(serial,
                                                                ks=(5, 10)))
        assert pool.closed

    def test_rejects_bad_arguments(self, tiny_dataset, tiny_split, tiny_graph):
        model, _, batches = self._model_and_batches(tiny_dataset, tiny_split,
                                                    tiny_graph)
        with pytest.raises(ValueError):
            EvalShardPool(model, batches, num_workers=0)
        with pytest.raises(ValueError):
            EvalShardPool(model, [], num_workers=2)
