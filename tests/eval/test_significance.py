"""Tests for the paired bootstrap significance test."""

import numpy as np
import pytest

from repro.eval import mrr, paired_bootstrap


class TestPairedBootstrap:
    def test_clear_winner_significant(self, rng):
        better = rng.integers(0, 3, size=200)     # ranks mostly near the top
        worse = rng.integers(5, 50, size=200)
        result = paired_bootstrap(better, worse, seed=0)
        assert result.delta > 0
        assert result.significant
        assert result.ci_low > 0

    def test_identical_systems_not_significant(self, rng):
        ranks = rng.integers(0, 20, size=100)
        result = paired_bootstrap(ranks, ranks.copy(), seed=0)
        assert result.delta == pytest.approx(0.0)
        assert not result.significant

    def test_noisy_tie_not_significant(self, rng):
        a = rng.integers(0, 30, size=80)
        b = a.copy()
        flip = rng.random(80) < 0.2
        b[flip] = rng.integers(0, 30, size=int(flip.sum()))
        result = paired_bootstrap(a, b, seed=1)
        assert result.ci_low <= result.delta <= result.ci_high

    def test_custom_metric(self, rng):
        a = rng.integers(0, 5, size=60)
        b = rng.integers(5, 40, size=60)
        result = paired_bootstrap(a, b, metric=mrr, seed=0)
        assert result.metric_a == pytest.approx(mrr(a))
        assert result.metric_b == pytest.approx(mrr(b))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.zeros(0), np.zeros(0))

    def test_deterministic_under_seed(self, rng):
        a = rng.integers(0, 10, size=50)
        b = rng.integers(0, 10, size=50)
        r1 = paired_bootstrap(a, b, seed=3, num_resamples=200)
        r2 = paired_bootstrap(a, b, seed=3, num_resamples=200)
        assert r1 == r2

    def test_str_marks_significance(self, rng):
        better = np.zeros(100, dtype=int)
        worse = np.full(100, 50)
        assert "*" in str(paired_bootstrap(better, worse, seed=0))


class TestCoverageMetrics:
    def test_top_k_items(self):
        from repro.eval import top_k_items
        scores = np.array([[0.1, 0.9, 0.5]])
        candidates = np.array([[10, 20, 30]])
        assert top_k_items(scores, candidates, 2).tolist() == [[20, 30]]

    def test_top_k_shape_mismatch(self):
        from repro.eval import top_k_items
        with pytest.raises(ValueError):
            top_k_items(np.zeros((2, 3)), np.zeros((2, 4)), 2)

    def test_item_coverage(self):
        from repro.eval import item_coverage
        recommended = np.array([[1, 2], [2, 3]])
        assert item_coverage(recommended, 10) == pytest.approx(0.3)

    def test_item_coverage_ignores_padding(self):
        from repro.eval import item_coverage
        assert item_coverage(np.array([[0, 1]]), 10) == pytest.approx(0.1)

    def test_item_coverage_invalid_vocab(self):
        from repro.eval import item_coverage
        with pytest.raises(ValueError):
            item_coverage(np.array([1]), 0)
