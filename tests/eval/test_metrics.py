"""Tests for ranking metrics (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval import MetricReport, hit_rate, mrr, ndcg, ranks_from_scores, recall


class TestRanksFromScores:
    def test_basic(self):
        scores = np.array([
            [3.0, 1.0, 2.0],   # positive (col 0) best → rank 0
            [1.0, 2.0, 3.0],   # positive worst → rank 2
        ])
        assert ranks_from_scores(scores).tolist() == [0, 2]

    def test_custom_positive_column(self):
        scores = np.array([[1.0, 5.0, 2.0]])
        assert ranks_from_scores(scores, positive_column=1).tolist() == [0]

    def test_ties_are_pessimistic(self):
        scores = np.array([[1.0, 1.0, 1.0]])
        # Both non-positive candidates tie the positive → rank 2 (worst case).
        assert ranks_from_scores(scores).tolist() == [2]

    def test_constant_scorer_gets_no_credit(self):
        scores = np.zeros((5, 100))
        ranks = ranks_from_scores(scores)
        assert hit_rate(ranks, 10) == 0.0


class TestMetricValues:
    def test_hr_exact(self):
        ranks = np.array([0, 4, 9, 10, 50])
        assert hit_rate(ranks, 10) == pytest.approx(3 / 5)
        assert hit_rate(ranks, 5) == pytest.approx(2 / 5)

    def test_ndcg_exact(self):
        # rank 0 → 1.0; rank 1 → 1/log2(3); rank >= k → 0
        ranks = np.array([0, 1, 10])
        expected = (1.0 + 1.0 / np.log2(3) + 0.0) / 3
        assert ndcg(ranks, 10) == pytest.approx(expected)

    def test_mrr_exact(self):
        assert mrr(np.array([0, 1, 4])) == pytest.approx((1 + 0.5 + 0.2) / 3)

    def test_empty_inputs(self):
        assert hit_rate(np.array([]), 10) == 0.0
        assert ndcg(np.array([]), 10) == 0.0
        assert mrr(np.array([])) == 0.0

    def test_recall_equals_hr(self):
        ranks = np.array([0, 3, 20])
        assert recall(ranks, 10) == hit_rate(ranks, 10)


class TestMetricProperties:
    @given(hnp.arrays(np.int64, st.integers(1, 40),
                      elements=st.integers(0, 99)))
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_monotonicity(self, ranks):
        for k in (1, 5, 10):
            assert 0.0 <= hit_rate(ranks, k) <= 1.0
            assert 0.0 <= ndcg(ranks, k) <= 1.0
            assert ndcg(ranks, k) <= hit_rate(ranks, k) + 1e-9
        assert hit_rate(ranks, 5) <= hit_rate(ranks, 10)
        assert ndcg(ranks, 5) <= ndcg(ranks, 10) + 1e-9
        assert 0.0 < mrr(ranks) <= 1.0

    @given(st.integers(0, 9))
    @settings(max_examples=10, deadline=None)
    def test_perfect_rank_gives_one(self, k_minus_one):
        ranks = np.zeros(4, dtype=int)
        assert hit_rate(ranks, k_minus_one + 1) == 1.0
        assert ndcg(ranks, k_minus_one + 1) == 1.0
        assert mrr(ranks) == 1.0


class TestMetricReport:
    def test_from_ranks_keys(self):
        report = MetricReport.from_ranks(np.array([0, 5, 15]), ks=(5, 10))
        assert set(report) == {"HR@5", "NDCG@5", "HR@10", "NDCG@10", "MRR"}

    def test_str_renders_all(self):
        report = MetricReport.from_ranks(np.array([0]), ks=(5,))
        assert "HR@5=1.0000" in str(report)
