"""End-to-end integration tests across module boundaries.

These run a real (tiny) pipeline: generate → preprocess → split → hypergraph
→ train → evaluate, asserting cross-cutting invariants that unit tests
cannot see.
"""

import numpy as np
import pytest

from repro.core import MISSL, MISSLConfig
from repro.data import SyntheticConfig, collate
from repro.eval import evaluate_ranking, paired_bootstrap, rank_all
from repro.experiments import ExperimentContext, build_model
from repro.nn import load_checkpoint, save_checkpoint
from repro.train import TrainConfig, Trainer

CORPUS = SyntheticConfig(num_users=70, num_items=150, num_interests=4,
                         interests_per_user=2, sessions_per_user=6.0,
                         target_per_session=0.7, min_target_events=3,
                         name="integration")


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.build(config=CORPUS, seed=9, max_len=20,
                                   num_negatives=50)


@pytest.fixture(scope="module")
def trained_missl(context):
    config = MISSLConfig(dim=16, num_interests=3, max_len=20, num_train_negatives=16)
    model = MISSL(context.dataset.num_items, context.dataset.schema, context.graph,
                  config, seed=0)
    Trainer(model, context.split,
            TrainConfig(epochs=6, patience=3, batch_size=64, seed=0)).fit()
    return model


class TestEndToEnd:
    def test_training_beats_untrained(self, context, trained_missl):
        config = MISSLConfig(dim=16, num_interests=3, max_len=20)
        untrained = MISSL(context.dataset.num_items, context.dataset.schema,
                          context.graph, config, seed=0)
        trained_report = evaluate_ranking(trained_missl, context.split.test,
                                          context.test_candidates,
                                          context.dataset.schema)
        untrained_report = evaluate_ranking(untrained, context.split.test,
                                            context.test_candidates,
                                            context.dataset.schema)
        assert trained_report["NDCG@10"] > untrained_report["NDCG@10"]

    def test_trained_model_beats_random_ranking(self, context, trained_missl):
        report = evaluate_ranking(trained_missl, context.split.test,
                                  context.test_candidates, context.dataset.schema)
        # A random ranker scores HR@10 ≈ 10/51 ≈ 0.196 on 50 negatives.
        assert report["HR@10"] > 0.25

    def test_checkpoint_roundtrip_preserves_metrics(self, context, trained_missl,
                                                    tmp_path):
        before = evaluate_ranking(trained_missl, context.split.test,
                                  context.test_candidates, context.dataset.schema)
        path = save_checkpoint(trained_missl, tmp_path / "missl.npz")
        config = MISSLConfig(dim=16, num_interests=3, max_len=20,
                             num_train_negatives=16)
        clone = MISSL(context.dataset.num_items, context.dataset.schema,
                      context.graph, config, seed=123)
        load_checkpoint(clone, path)
        clone.eval()
        after = evaluate_ranking(clone, context.split.test, context.test_candidates,
                                 context.dataset.schema)
        assert before == after

    def test_full_reproducibility(self, context):
        """Same seeds end to end → bit-identical metric reports."""
        reports = []
        for _ in range(2):
            config = MISSLConfig(dim=16, num_interests=2, max_len=20,
                                 num_train_negatives=8, lambda_aug=0.0)
            model = MISSL(context.dataset.num_items, context.dataset.schema,
                          context.graph, config, seed=21)
            Trainer(model, context.split,
                    TrainConfig(epochs=2, patience=2, seed=5)).fit()
            reports.append(evaluate_ranking(model, context.split.test,
                                            context.test_candidates,
                                            context.dataset.schema))
        assert reports[0] == reports[1]

    def test_bootstrap_compare_pipeline(self, context, trained_missl):
        pop = build_model("POP", context)
        missl_ranks = rank_all(trained_missl, context.split.test,
                               context.test_candidates, context.dataset.schema)
        pop_ranks = rank_all(pop, context.split.test, context.test_candidates,
                             context.dataset.schema)
        result = paired_bootstrap(missl_ranks, pop_ranks, seed=0)
        # Point estimates must match the evaluator's report.
        report = evaluate_ranking(trained_missl, context.split.test,
                                  context.test_candidates, context.dataset.schema)
        assert result.metric_a == pytest.approx(report["NDCG@10"], abs=1e-9)

    def test_no_test_leakage_in_hypergraph(self, context):
        """Items that only ever occur as a user's held-out targets must be
        isolated in the training hypergraph."""
        dataset = context.dataset
        degrees = context.graph.node_degrees()
        train_items = set()
        for user in dataset.users:
            cutoff = dataset.sequence_with_times(user, dataset.schema.target)[-2][1]
            for item, behavior, ts in dataset.merged_sequence(user):
                if ts < cutoff:
                    train_items.add(item)
        holdout_only = set(range(1, dataset.num_items + 1)) - train_items
        for item in holdout_only:
            assert degrees[item] == 0

    def test_scores_do_not_depend_on_batch_composition(self, context, trained_missl):
        """Scoring a user alone or inside a batch must give identical scores."""
        from repro.nn.tensor import no_grad
        examples = context.split.test[:5]
        candidates = context.test_candidates.slice(np.arange(5))
        trained_missl.eval()
        with no_grad():
            batch_scores = trained_missl.score_candidates(
                collate(examples, context.dataset.schema), candidates).numpy()
            solo_scores = np.stack([
                trained_missl.score_candidates(
                    collate([example], context.dataset.schema),
                    candidates[i:i + 1]).numpy()[0]
                for i, example in enumerate(examples)
            ])
        assert np.allclose(batch_scores, solo_scores, atol=1e-4)
