"""Tests for seeding, tables and the gradcheck helper itself."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.utils import (format_table, gradcheck, numerical_gradient, seeded_rng,
                         spawn_rngs, write_csv, write_markdown)


class TestSeeding:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(5).random() == seeded_rng(5).random()

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        first = [g.random() for g in spawn_rngs(3, 3)]
        second = [g.random() for g in spawn_rngs(3, 3)]
        assert first == second


class TestGradcheck:
    @pytest.mark.usefixtures("float64")
    def test_detects_wrong_gradient(self, rng):
        """A deliberately broken backward must be caught."""
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def broken(t):
            out = t * 2.0
            original = out._backward

            def corrupted():
                t._accumulate(np.ones(3) * 99.0)
            out._backward = corrupted
            return out

        with pytest.raises(AssertionError):
            gradcheck(broken, [x])

    @pytest.mark.usefixtures("float64")
    def test_numerical_gradient_of_square(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        numeric = numerical_gradient(lambda t: t * t, [x], 0)
        assert np.allclose(numeric, 2 * x.numpy(), atol=1e-4)

    @pytest.mark.usefixtures("float64")
    def test_missing_grad_detected(self, rng):
        x = Tensor(rng.normal(size=(2,)), requires_grad=True)
        unused = Tensor(rng.normal(size=(2,)), requires_grad=True)
        with pytest.raises(AssertionError, match="received no gradient"):
            gradcheck(lambda a, b: a * 2.0, [x, unused])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.2346" in text  # floats rendered at 4 decimals

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[2] == "3,4"

    def test_write_markdown(self, tmp_path):
        path = write_markdown(tmp_path / "out.md", ["a"], [[1]], title="Table X")
        text = path.read_text()
        assert text.startswith("## Table X")
        assert "| a |" in text
