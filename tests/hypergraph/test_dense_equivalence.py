"""Sparse hypergraph math vs naive dense references.

Every sparse/segment computation is re-derived here with dense NumPy and
compared — a different implementation path than both the library and its
other tests, guarding against subtle indexing errors in the COO machinery.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hypergraph import (Hypergraph, hgnn_propagation_matrix, segment_softmax,
                              segment_sum, sparse_mm)
from repro.nn.tensor import Tensor


def random_hypergraph(rng, num_nodes=9, num_edges=6, density=0.35):
    dense = (rng.random((num_nodes, num_edges)) < density).astype(float)
    dense[0] = 0.0  # padding row isolated
    # Ensure no empty edges (builder guarantees min_edge_size >= 2).
    for e in range(num_edges):
        if dense[1:, e].sum() < 2:
            picks = rng.choice(np.arange(1, num_nodes), size=2, replace=False)
            dense[picks, e] = 1.0
    return Hypergraph(sp.csr_matrix(dense), np.zeros(num_edges, dtype=np.int64),
                      np.zeros(num_edges, dtype=np.int64)), dense


class TestDenseEquivalence:
    def test_propagation_matrix_formula(self, rng):
        graph, dense = random_hypergraph(rng)
        node_deg = dense.sum(axis=1)
        edge_deg = dense.sum(axis=0)
        safe_deg = np.where(node_deg > 0, node_deg, 1.0)
        dv = np.diag(np.where(node_deg > 0, safe_deg ** -0.5, 0.0))
        de = np.diag(1.0 / edge_deg)
        expected = dv @ dense @ de @ dense.T @ dv
        actual = hgnn_propagation_matrix(graph).toarray()
        assert np.allclose(actual, expected, atol=1e-10)

    def test_sparse_mm_vs_dense(self, rng):
        graph, dense = random_hypergraph(rng)
        x = rng.normal(size=(9, 4))
        out = sparse_mm(graph.incidence.T.tocsr(), Tensor(x)).numpy()
        assert np.allclose(out, dense.T @ x, atol=1e-6)

    def test_segment_sum_vs_dense_scatter(self, rng):
        values = rng.normal(size=(12, 3))
        segments = rng.integers(0, 4, size=12)
        expected = np.zeros((4, 3))
        for i, s in enumerate(segments):
            expected[s] += values[i]
        actual = segment_sum(Tensor(values), segments, 4).numpy()
        assert np.allclose(actual, expected, atol=1e-6)

    def test_segment_softmax_vs_dense_per_group(self, rng):
        scores = rng.normal(size=(15,))
        segments = rng.integers(0, 5, size=15)
        actual = segment_softmax(Tensor(scores), segments, 5).numpy()
        for s in np.unique(segments):
            member = segments == s
            exp = np.exp(scores[member] - scores[member].max())
            assert np.allclose(actual[member], exp / exp.sum(), atol=1e-6)

    def test_edge_mean_matrix_vs_dense(self, rng):
        from repro.hypergraph.transformer import _edge_mean_matrix
        graph, dense = random_hypergraph(rng)
        x = rng.normal(size=(9, 4))
        expected = np.stack([
            x[dense[:, e] > 0].mean(axis=0) for e in range(dense.shape[1])
        ])
        actual = (_edge_mean_matrix(graph) @ x)
        assert np.allclose(np.asarray(actual), expected, atol=1e-10)

    def test_transformer_layer_matches_manual_propagation_term(self, rng):
        """With attention and FFN gates forced to zero, the layer reduces to
        x + g_p · P x exactly."""
        from repro.hypergraph import HypergraphTransformerLayer
        graph, _ = random_hypergraph(rng)
        layer = HypergraphTransformerLayer(4, graph, 2, rng)
        layer.eval()
        layer.attn_gate.data[...] = 0.0
        layer.ffn_gate.data[...] = 0.0
        layer.prop_gate.data[...] = 0.7
        x = rng.normal(size=(9, 4))
        expected = x + 0.7 * (hgnn_propagation_matrix(graph) @ x)
        actual = layer(Tensor(x)).numpy()
        assert np.allclose(actual, expected, atol=1e-5)
