"""Tests for the hypergraph incidence structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hypergraph import Hypergraph, hgnn_propagation_matrix


def tiny_graph():
    # 5 nodes, 2 edges: e0 = {1, 2, 4}, e1 = {2, 3, 4}
    incidence = sp.csr_matrix(np.array([
        [0, 0], [1, 0], [1, 1], [0, 1], [1, 1],
    ], dtype=float))
    return Hypergraph(incidence, np.array([0, 1]), np.array([0, 0]))


class TestHypergraph:
    def test_degrees(self):
        graph = tiny_graph()
        assert graph.node_degrees().tolist() == [0, 1, 2, 1, 2]
        assert graph.edge_sizes().tolist() == [3, 3]

    def test_coo_pairs_consistent(self):
        graph = tiny_graph()
        nodes, edges = graph.coo_pairs()
        assert len(nodes) == graph.incidence.nnz
        for v, e in zip(nodes, edges):
            assert graph.incidence[v, e] == 1

    def test_metadata_length_checked(self):
        incidence = sp.csr_matrix(np.ones((3, 2)))
        with pytest.raises(ValueError):
            Hypergraph(incidence, np.array([0]), np.array([0, 0]))

    def test_restrict_edges_bool_and_index(self):
        graph = tiny_graph()
        sub = graph.restrict_edges(np.array([True, False]))
        assert sub.num_edges == 1
        sub2 = graph.restrict_edges(np.array([1]))
        assert sub2.edge_behavior.tolist() == [1]


class TestPropagationMatrix:
    def test_shape_and_symmetry(self):
        graph = tiny_graph()
        prop = hgnn_propagation_matrix(graph)
        assert prop.shape == (5, 5)
        dense = prop.toarray()
        assert np.allclose(dense, dense.T, atol=1e-10)

    def test_isolated_node_row_zero(self):
        prop = hgnn_propagation_matrix(tiny_graph()).toarray()
        assert np.allclose(prop[0], 0.0)

    def test_edge_weights_scale(self):
        graph = tiny_graph()
        base = hgnn_propagation_matrix(graph).toarray()
        doubled = hgnn_propagation_matrix(graph, np.array([2.0, 2.0])).toarray()
        assert np.allclose(doubled, 2 * base, atol=1e-10)

    def test_spectral_radius_bounded(self):
        """The normalized operator's eigenvalues are bounded by 1."""
        prop = hgnn_propagation_matrix(tiny_graph()).toarray()
        eigenvalues = np.linalg.eigvalsh(prop)
        assert eigenvalues.max() <= 1.0 + 1e-8


class TestNetworkXBridge:
    def test_bipartite_expansion(self):
        graph = tiny_graph().to_networkx()
        item_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "item"]
        edge_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "hyperedge"]
        assert len(item_nodes) == 5
        assert len(edge_nodes) == 2
        assert graph.number_of_edges() == tiny_graph().incidence.nnz
        assert graph.nodes["e1"]["behavior"] == 1

    def test_connected_fraction(self):
        hg = tiny_graph()
        # Nodes 1-4 are all connected through the two overlapping edges;
        # node 0 (padding) is isolated and excluded from the denominator.
        assert hg.connected_item_fraction() == pytest.approx(1.0)

    def test_fragmented_graph_detected(self):
        import scipy.sparse as sp
        incidence = sp.csr_matrix(np.array([
            [0, 0], [1, 0], [1, 0], [0, 1], [0, 1], [0, 0],
        ], dtype=float))
        hg = Hypergraph(incidence, np.array([0, 0]), np.array([0, 1]))
        # Two disjoint 2-item edges over 5 real nodes: largest component
        # covers 2 of 5.
        assert hg.connected_item_fraction() == pytest.approx(2 / 5)
