"""Tests for HGNN convolution and the hypergraph transformer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hypergraph import (HGNNConv, HGNNEncoder, Hypergraph, HypergraphTransformer,
                              HypergraphTransformerLayer)
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


def tiny_graph():
    incidence = sp.csr_matrix(np.array([
        [0, 0], [1, 0], [1, 1], [0, 1], [1, 1],
    ], dtype=float))
    return Hypergraph(incidence, np.array([0, 1]), np.array([0, 0]))


class TestHGNN:
    def test_shape_preserved(self, rng):
        conv = HGNNConv(8, tiny_graph(), rng)
        x = Tensor(rng.normal(size=(5, 8)))
        assert conv(x).shape == (5, 8)

    def test_encoder_stacks(self, rng):
        enc = HGNNEncoder(8, tiny_graph(), 3, rng)
        x = Tensor(rng.normal(size=(5, 8)))
        assert enc(x).shape == (5, 8)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        conv = HGNNConv(4, tiny_graph(), rng)
        conv.eval()
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gradcheck(lambda a: conv(a), [x], atol=1e-3, rtol=5e-3)


class TestHypergraphTransformer:
    def test_shape_preserved(self, rng):
        layer = HypergraphTransformerLayer(8, tiny_graph(), 3, rng)
        x = Tensor(rng.normal(size=(5, 8)))
        assert layer(x).shape == (5, 8)

    def test_information_flows_within_edge(self, rng):
        """Perturbing one member of an edge must affect its co-members."""
        layer = HypergraphTransformerLayer(8, tiny_graph(), 3, rng)
        layer.eval()
        x = rng.normal(size=(5, 8))
        out1 = layer(Tensor(x)).numpy()
        x2 = x.copy()
        x2[1, 0] += 5.0  # node 1 shares edge 0 with nodes 2 and 4
        out2 = layer(Tensor(x2)).numpy()
        assert not np.allclose(out1[2], out2[2], atol=1e-5)
        assert not np.allclose(out1[4], out2[4], atol=1e-5)

    def test_isolated_node_unaffected_by_others(self, rng):
        """Node 0 (padding, no edges) must not read other nodes' features."""
        layer = HypergraphTransformerLayer(8, tiny_graph(), 3, rng)
        layer.eval()
        x = rng.normal(size=(5, 8))
        out1 = layer(Tensor(x)).numpy()
        x2 = x.copy()
        x2[3, 0] += 50.0
        out2 = layer(Tensor(x2)).numpy()
        assert np.allclose(out1[0], out2[0], atol=1e-5)

    def test_cross_behavior_sentinel_mapped(self, rng):
        graph = tiny_graph()
        graph.edge_behavior[:] = [-1, 1]
        layer = HypergraphTransformerLayer(8, graph, 3, rng)
        assert layer.edge_type.tolist() == [2, 1]

    def test_stack_forward(self, rng):
        model = HypergraphTransformer(8, tiny_graph(), 3, 2, rng)
        x = Tensor(rng.normal(size=(5, 8)))
        assert model(x).shape == (5, 8)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        layer = HypergraphTransformerLayer(4, tiny_graph(), 3, rng)
        layer.eval()
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        gradcheck(lambda a: layer(a), [x], atol=1e-3, rtol=5e-3)

    def test_training_reduces_reconstruction_loss(self, rng):
        """The layer must be trainable end-to-end."""
        from repro.nn import Adam
        layer = HypergraphTransformerLayer(6, tiny_graph(), 3, rng)
        x = Tensor(rng.normal(size=(5, 6)))
        target = Tensor(rng.normal(size=(5, 6)))
        opt = Adam(layer.parameters(), lr=0.01)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            loss = ((layer(x) - target) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
