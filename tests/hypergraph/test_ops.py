"""Tests for the sparse/segment autodiff primitives."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import segment_max, segment_softmax, segment_sum, sparse_mm
from repro.nn.tensor import Tensor
from repro.utils import gradcheck


class TestSparseMM:
    def test_matches_dense(self, rng):
        matrix = sp.random(6, 5, density=0.4, random_state=0).tocsr()
        x = rng.normal(size=(5, 3))
        out = sparse_mm(matrix, Tensor(x))
        assert np.allclose(out.numpy(), matrix.toarray() @ x, atol=1e-5)

    def test_shape_mismatch(self, rng):
        matrix = sp.eye(4).tocsr()
        with pytest.raises(ValueError):
            sparse_mm(matrix, Tensor(rng.normal(size=(5, 2))))

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        matrix = sp.random(6, 5, density=0.5, random_state=1).tocsr()
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        gradcheck(lambda a: sparse_mm(matrix, a), [x])


class TestSegmentSum:
    def test_values(self):
        values = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = segment_sum(values, np.array([0, 0, 1, 1]), 2)
        assert np.allclose(out.numpy(), [[3.0], [7.0]])

    def test_empty_segment_is_zero(self):
        values = Tensor(np.ones((2, 3)))
        out = segment_sum(values, np.array([0, 2]), 4)
        assert np.allclose(out.numpy()[1], 0.0)
        assert np.allclose(out.numpy()[3], 0.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 1))), np.array([0, 5]), 2)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        values = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        seg = np.array([0, 1, 1, 2, 2, 2])
        gradcheck(lambda v: segment_sum(v, seg, 3), [values])


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self, rng):
        scores = Tensor(rng.normal(size=(7,)))
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        out = segment_softmax(scores, seg, 3).numpy()
        for s in range(3):
            assert out[seg == s].sum() == pytest.approx(1.0, rel=1e-5)

    def test_singleton_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([5.0])), np.array([0]), 1).numpy()
        assert out[0] == pytest.approx(1.0)

    def test_numerically_stable(self):
        scores = Tensor(np.array([1e4, 1e4 + 1.0, -1e4]))
        out = segment_softmax(scores, np.array([0, 0, 0]), 1).numpy()
        assert np.all(np.isfinite(out))
        assert out.sum() == pytest.approx(1.0, rel=1e-5)

    def test_requires_1d(self, rng):
        with pytest.raises(ValueError):
            segment_softmax(Tensor(rng.normal(size=(3, 2))), np.array([0, 0, 1]), 2)

    @pytest.mark.usefixtures("float64")
    def test_grads(self, rng):
        scores = Tensor(rng.normal(size=(7,)), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        weights = Tensor(rng.normal(size=(7,)))
        gradcheck(lambda s: segment_softmax(s, seg, 3) * weights, [scores])

    @given(st.integers(1, 5), st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_property_sum_per_segment(self, num_segments, n):
        rng = np.random.default_rng(n * 31 + num_segments)
        seg = rng.integers(0, num_segments, size=n)
        out = segment_softmax(Tensor(rng.normal(size=n)), seg, num_segments).numpy()
        for s in np.unique(seg):
            assert out[seg == s].sum() == pytest.approx(1.0, rel=1e-4)


class TestSegmentMax:
    def test_values(self):
        values = np.array([1.0, 5.0, 2.0, -1.0])
        out = segment_max(values, np.array([0, 0, 1, 1]), 2)
        assert out.tolist() == [5.0, 2.0]

    def test_empty_segment_minus_inf(self):
        out = segment_max(np.array([1.0]), np.array([0]), 2)
        assert out[1] == -np.inf
