"""Tests for hypergraph construction from interaction data."""

import numpy as np
import pytest

from repro.data import BehaviorSchema, Interaction, MultiBehaviorDataset
from repro.hypergraph import CROSS_BEHAVIOR_EDGE, BuilderConfig, build_hypergraph

SCHEMA = BehaviorSchema(behaviors=("view", "buy"), target="buy")


def make_ds(events, num_items=20):
    return MultiBehaviorDataset(events, SCHEMA, num_items)


class TestBuilder:
    def test_nodes_include_padding(self, tiny_dataset):
        graph = build_hypergraph(tiny_dataset)
        assert graph.num_nodes == tiny_dataset.num_items + 1
        assert graph.node_degrees()[0] == 0  # padding item isolated

    def test_behavior_edges_have_behavior_ids(self, tiny_dataset):
        graph = build_hypergraph(tiny_dataset)
        schema = tiny_dataset.schema
        valid = set(range(schema.num_behaviors)) | {CROSS_BEHAVIOR_EDGE}
        assert set(np.unique(graph.edge_behavior)) <= valid

    def test_cross_behavior_edges_exist(self, tiny_dataset):
        graph = build_hypergraph(tiny_dataset)
        assert (graph.edge_behavior == CROSS_BEHAVIOR_EDGE).any()

    def test_no_cross_edges_when_disabled(self, tiny_dataset):
        graph = build_hypergraph(tiny_dataset,
                                 BuilderConfig(include_cross_behavior=False))
        assert not (graph.edge_behavior == CROSS_BEHAVIOR_EDGE).any()

    def test_window_splits_edges(self):
        events = [Interaction(0, i, "view", i) for i in range(1, 13)]
        events += [Interaction(0, 1, "buy", 20 + t) for t in range(3)]
        ds = make_ds(events)
        narrow = build_hypergraph(ds, BuilderConfig(window=4, holdout_targets=0,
                                                    include_cross_behavior=False))
        wide = build_hypergraph(ds, BuilderConfig(window=None, holdout_targets=0,
                                                  include_cross_behavior=False))
        assert narrow.num_edges > wide.num_edges

    def test_min_edge_size_drops_singletons(self):
        events = [Interaction(0, 1, "view", 1),
                  Interaction(0, 2, "buy", 2), Interaction(0, 2, "buy", 3),
                  Interaction(0, 2, "buy", 4)]
        ds = make_ds(events)
        graph = build_hypergraph(ds, BuilderConfig(holdout_targets=0))
        # The only multi-item set is the cross edge {1, 2}.
        assert graph.num_edges == 1
        assert graph.edge_behavior[0] == CROSS_BEHAVIOR_EDGE

    def test_holdout_excludes_test_items(self):
        """Items appearing ONLY in the held-out tail must stay isolated."""
        events = [Interaction(0, 1, "view", 1), Interaction(0, 2, "view", 2),
                  Interaction(0, 3, "buy", 3), Interaction(0, 4, "buy", 4),
                  Interaction(0, 5, "buy", 5),   # holdout: valid
                  Interaction(0, 6, "buy", 6)]   # holdout: test
        ds = make_ds(events)
        graph = build_hypergraph(ds, BuilderConfig(holdout_targets=2))
        degrees = graph.node_degrees()
        assert degrees[5] == 0
        assert degrees[6] == 0
        assert degrees[1] > 0

    def test_empty_dataset_yields_placeholder_edge(self):
        ds = make_ds([Interaction(0, 1, "buy", 1)])
        graph = build_hypergraph(ds, BuilderConfig(holdout_targets=2))
        assert graph.num_edges == 1  # placeholder, no memberships
        assert graph.incidence.nnz == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BuilderConfig(window=1)
        with pytest.raises(ValueError):
            BuilderConfig(min_edge_size=1)

    def test_edge_users_recorded(self, tiny_dataset):
        graph = build_hypergraph(tiny_dataset)
        real_edges = graph.edge_user >= 0
        assert real_edges.all()
        assert set(np.unique(graph.edge_user)) <= set(tiny_dataset.users)
