"""CLI behavior (`python -m repro lint`) and the src/repro self-check gate."""

import json
from collections import Counter
from pathlib import Path

import repro
from repro.cli import main
from repro.lint import Baseline, lint_paths

SRC_REPRO = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_REPRO.parents[1]
REPO_BASELINE = REPO_ROOT / "lint-baseline.json"

BAD_RANDOM = "import numpy as np\nx = np.random.rand(3)\n"


class TestExitCodes:
    def test_clean_path_exits_zero(self, write_module, capsys):
        path = write_module("repro.data.good", "x = 1\n")
        assert main(["lint", str(path), "--no-baseline"]) == 0
        assert "clean (" in capsys.readouterr().out

    def test_findings_exit_one(self, write_module, capsys):
        path = write_module("repro.data.bad", BAD_RANDOM)
        assert main(["lint", str(path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SEEDED-RANDOMNESS" in out

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2

    def test_unknown_rule_is_usage_error(self, write_module):
        path = write_module("repro.data.good", "x = 1\n")
        assert main(["lint", str(path), "--select", "NOT-A-RULE"]) == 2

    def test_missing_explicit_baseline_is_usage_error(self, write_module,
                                                      tmp_path):
        path = write_module("repro.data.good", "x = 1\n")
        assert main(["lint", str(path),
                     "--baseline", str(tmp_path / "missing.json")]) == 2


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DTYPE-DISCIPLINE", "SCATTER-CONTAINMENT",
                        "NO-BARE-PRINT", "SEEDED-RANDOMNESS",
                        "TELEMETRY-GUARD"):
            assert rule_id in out

    def test_select_restricts_rules(self, write_module):
        path = write_module("repro.data.bad", BAD_RANDOM)
        assert main(["lint", str(path), "--no-baseline",
                     "--select", "NO-BARE-PRINT"]) == 0
        assert main(["lint", str(path), "--no-baseline",
                     "--select", "seeded-randomness"]) == 1

    def test_json_format(self, write_module, capsys):
        path = write_module("repro.data.bad", BAD_RANDOM)
        assert main(["lint", str(path), "--no-baseline",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "SEEDED-RANDOMNESS"

    def test_write_baseline_then_gate_passes(self, write_module, tmp_path,
                                             capsys):
        path = write_module("repro.data.bad", BAD_RANDOM)
        baseline_path = tmp_path / "accepted.json"
        assert main(["lint", str(path), "--baseline", str(baseline_path),
                     "--write-baseline"]) == 0
        assert baseline_path.exists()
        capsys.readouterr()
        assert main(["lint", str(path),
                     "--baseline", str(baseline_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestSelfCheck:
    """The committed tree must satisfy its own gate (CI acceptance)."""

    def test_src_repro_is_clean_under_committed_baseline(self):
        result = lint_paths([SRC_REPRO],
                            baseline=Baseline.load(REPO_BASELINE))
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert not result.unused_baseline, (
            f"stale baseline entries: {result.unused_baseline}")

    def test_removing_baseline_resurfaces_only_baselined_findings(self):
        # Acceptance: without the baseline file, the only findings are the
        # deliberately-baselined ones — nothing else is hiding behind it.
        ungated = lint_paths([SRC_REPRO])
        expected = Counter(
            (e["module"], e["rule"], e["code"])
            for e in Baseline.load(REPO_BASELINE).entries)
        assert Counter(f.key() for f in ungated.findings) == expected

    def test_every_baseline_entry_documents_a_reason(self):
        for entry in Baseline.load(REPO_BASELINE).entries:
            assert entry["reason"].strip(), (
                f"baseline entry without a reason: {entry}")

    def test_cli_gate_from_repo_root(self, capsys):
        # The exact invocation benchmarks/run_perf_smoke.sh uses.
        assert main(["lint", str(SRC_REPRO)]) == 0
        assert "clean (" in capsys.readouterr().out
