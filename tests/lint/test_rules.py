"""Per-rule fixture tests: each rule fires on a snippet and noqa silences it."""

from repro.lint import get_rule, lint_paths


def run_rule(rule_id, path):
    return lint_paths([path], rules=[get_rule(rule_id)])


class TestDtypeDiscipline:
    def test_factory_without_dtype_fires(self, write_module):
        path = write_module("repro.nn.bad", """\
            import numpy as np
            x = np.zeros((3, 4))
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "DTYPE-DISCIPLINE"
        assert "without an explicit dtype" in finding.message
        assert finding.code == "x = np.zeros((3, 4))"
        assert finding.module == "repro.nn.bad"

    def test_each_factory_is_covered(self, write_module):
        path = write_module("repro.core.bad", """\
            import numpy as np
            a = np.zeros(3)
            b = np.ones(3)
            c = np.empty(3)
            d = np.full(3, 7.0)
            e = np.arange(3)
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 5

    def test_explicit_float64_fires(self, write_module):
        path = write_module("repro.serve.bad", """\
            import numpy as np
            x = np.full((2, 2), 0.0, dtype=np.float64)
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 1
        assert "float64" in result.findings[0].message

    def test_astype_float64_fires(self, write_module):
        path = write_module("repro.nn.bad", """\
            import numpy as np
            x = np.zeros(3, dtype=np.float32)
            y = x.astype(np.float64)
            z = x.astype("float64")
            w = x.astype(float)
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 3
        assert all(".astype to float64" in f.message for f in result.findings)

    def test_explicit_safe_dtypes_are_clean(self, write_module):
        path = write_module("repro.nn.good", """\
            import numpy as np
            a = np.zeros((3,), dtype=np.float32)
            b = np.arange(5, dtype=np.intp)
            c = np.full(3, -1, dtype=np.int64)
            d = a.astype(np.float32)
        """)
        assert run_rule("DTYPE-DISCIPLINE", path).ok

    def test_only_hot_packages_are_in_scope(self, write_module):
        # repro.data and foreign packages may use defaults freely.
        for module in ("repro.data.bad", "otherpkg.helpers"):
            path = write_module(module, """\
                import numpy as np
                x = np.zeros((3, 4))
            """)
            assert run_rule("DTYPE-DISCIPLINE", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.nn.bad", """\
            import numpy as np
            x = np.zeros((3, 4))  # repro: noqa[DTYPE-DISCIPLINE]
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert result.ok
        assert result.suppressed_count == 1

    def test_quant_module_requires_dtype_on_converters(self, write_module):
        path = write_module("repro.serve.quant", """\
            import numpy as np
            a = np.asarray(codes)
            b = np.array(codes)
            c = np.asarray(codes, dtype=np.uint8)
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 2
        assert all("silently promotes" in f.message for f in result.findings)

    def test_converters_unchecked_outside_quant(self, write_module):
        path = write_module("repro.serve.index", """\
            import numpy as np
            a = np.asarray(rows)
        """)
        assert run_rule("DTYPE-DISCIPLINE", path).ok

    def test_quant_confines_float64_to_refine_functions(self, write_module):
        path = write_module("repro.serve.quant", """\
            import numpy as np

            def _refine_and_rank(scores):
                return scores.astype(np.float64)

            def scan(codes):
                return codes.astype(np.float64)
        """)
        result = run_rule("DTYPE-DISCIPLINE", path)
        assert len(result.findings) == 1
        assert result.findings[0].code == "return codes.astype(np.float64)"
        assert "refine step only" in result.findings[0].message


class TestScatterContainment:
    def test_ufunc_at_fires_outside_home(self, write_module):
        path = write_module("repro.core.bad", """\
            import numpy as np
            np.add.at(target, index, updates)
            np.maximum.at(target, index, updates)
        """)
        result = run_rule("SCATTER-CONTAINMENT", path)
        assert len(result.findings) == 2
        assert "outside repro.nn.scatter" in result.findings[0].message

    def test_home_module_is_exempt(self, write_module):
        path = write_module("repro.nn.scatter", """\
            import numpy as np
            np.add.at(target, index, updates)
        """)
        assert run_rule("SCATTER-CONTAINMENT", path).ok

    def test_unrelated_at_methods_are_clean(self, write_module):
        path = write_module("repro.core.good", """\
            series.at(3)
            frame.iloc.at(0)
        """)
        assert run_rule("SCATTER-CONTAINMENT", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.core.bad", """\
            import numpy as np
            np.add.at(target, index, updates)  # repro: noqa[SCATTER-CONTAINMENT]
        """)
        result = run_rule("SCATTER-CONTAINMENT", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestShmDiscipline:
    def test_shared_memory_call_fires_outside_home(self, write_module):
        path = write_module("repro.train.bad", """\
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(name="x", create=True, size=64)
            other = SharedMemory(name="y")
        """)
        result = run_rule("SHM-DISCIPLINE", path)
        assert len(result.findings) == 2
        assert "outside repro.data.shm" in result.findings[0].message

    def test_home_module_is_exempt(self, write_module):
        path = write_module("repro.data.shm", """\
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(name="x", create=True, size=64)
        """)
        assert run_rule("SHM-DISCIPLINE", path).ok

    def test_unrelated_names_are_clean(self, write_module):
        path = write_module("repro.train.good", """\
            from repro.data.shm import ShmArena
            arena = ShmArena(slot_bytes=4096, num_slots=2)
            block = arena.write([payload])
        """)
        assert run_rule("SHM-DISCIPLINE", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.train.bad", """\
            from multiprocessing.shared_memory import SharedMemory
            segment = SharedMemory(name="x")  # repro: noqa[SHM-DISCIPLINE]
        """)
        result = run_rule("SHM-DISCIPLINE", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestNoBarePrint:
    def test_print_in_library_code_fires(self, write_module):
        path = write_module("repro.train.bad", """\
            def run():
                print("step done")
        """)
        result = run_rule("NO-BARE-PRINT", path)
        assert len(result.findings) == 1
        assert "print" in result.findings[0].message

    def test_cli_surface_is_exempt(self, write_module):
        path = write_module("repro.cli", """\
            print("usage: ...")
        """)
        assert run_rule("NO-BARE-PRINT", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.train.bad", """\
            print("debug")  # repro: noqa[NO-BARE-PRINT]
        """)
        result = run_rule("NO-BARE-PRINT", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestSeededRandomness:
    def test_global_state_draws_fire(self, write_module):
        path = write_module("repro.data.bad", """\
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
            y = np.random.permutation(10)
        """)
        result = run_rule("SEEDED-RANDOMNESS", path)
        assert len(result.findings) == 3
        assert "global-state np.random.seed" in result.findings[0].message

    def test_generator_construction_is_allowed(self, write_module):
        path = write_module("repro.data.good", """\
            import numpy as np
            rng = np.random.default_rng(7)
            gen = np.random.Generator(np.random.PCG64(7))
            x = rng.normal(size=3)
        """)
        assert run_rule("SEEDED-RANDOMNESS", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.data.bad", """\
            import numpy as np
            x = np.random.rand(3)  # repro: noqa[SEEDED-RANDOMNESS]
        """)
        result = run_rule("SEEDED-RANDOMNESS", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestTelemetryGuard:
    def test_chained_access_fires(self, write_module):
        path = write_module("repro.train.bad", """\
            from repro.obs import get_telemetry, current_span
            get_telemetry().counter("steps").inc()
            current_span().set_tag("k", "v")
        """)
        result = run_rule("TELEMETRY-GUARD", path)
        assert len(result.findings) == 2
        assert "returns None when disabled" in result.findings[0].message

    def test_qualified_accessor_also_fires(self, write_module):
        path = write_module("repro.train.bad", """\
            import repro.obs as obs
            obs.get_telemetry().flush()
        """)
        result = run_rule("TELEMETRY-GUARD", path)
        assert len(result.findings) == 1

    def test_bound_and_checked_is_clean(self, write_module):
        path = write_module("repro.train.good", """\
            from repro.obs import get_telemetry
            telemetry = get_telemetry()
            if telemetry is not None:
                telemetry.counter("steps").inc()
        """)
        assert run_rule("TELEMETRY-GUARD", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.train.bad", """\
            from repro.obs import get_telemetry
            get_telemetry().flush()  # repro: noqa[TELEMETRY-GUARD]
        """)
        result = run_rule("TELEMETRY-GUARD", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestBlockingIoContainment:
    def test_socket_import_fires_outside_home(self, write_module):
        path = write_module("repro.train.bad", """\
            import socket
        """)
        result = run_rule("BLOCKING-IO-CONTAINMENT", path)
        assert len(result.findings) == 1
        assert "socket import" in result.findings[0].message

    def test_from_socket_import_fires(self, write_module):
        path = write_module("repro.obs.bad", """\
            from socket import create_connection
        """)
        result = run_rule("BLOCKING-IO-CONTAINMENT", path)
        assert len(result.findings) == 1

    def test_constructors_and_blocking_methods_fire(self, write_module):
        path = write_module("repro.core.bad", """\
            import socket
            conn = socket.create_connection(("localhost", 80))
            conn.sendall(b"hi")
            data = conn.recv(4096)
            listener = socket.socket()
            listener.accept()
        """)
        result = run_rule("BLOCKING-IO-CONTAINMENT", path)
        # import + 2 constructors + sendall + recv + accept
        assert len(result.findings) == 6
        messages = "\n".join(f.message for f in result.findings)
        assert "socket.create_connection" in messages
        assert ".recv()" in messages and ".sendall()" in messages

    def test_home_module_is_exempt(self, write_module):
        path = write_module("repro.serve.net", """\
            import socket
            conn = socket.create_connection(("localhost", 80))
            conn.sendall(b"hi")
        """)
        assert run_rule("BLOCKING-IO-CONTAINMENT", path).ok

    def test_unrelated_attribute_calls_are_clean(self, write_module):
        path = write_module("repro.core.good", """\
            results.put(("ok", value))
            queue.get(timeout=1.0)
        """)
        assert run_rule("BLOCKING-IO-CONTAINMENT", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.train.bad", """\
            import socket  # repro: noqa[BLOCKING-IO-CONTAINMENT]
        """)
        result = run_rule("BLOCKING-IO-CONTAINMENT", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestSpanNameDiscipline:
    def test_catalog_literals_are_clean(self, write_module):
        path = write_module("repro.train.good", """\
            from repro.obs import span
            with span("train.epoch", epoch=1):
                registry.counter("serve.requests").inc()
                registry.histogram("net.request.seconds").record(0.1)
        """)
        assert run_rule("SPAN-NAME-DISCIPLINE", path).ok

    def test_ad_hoc_literal_fires(self, write_module):
        path = write_module("repro.train.bad", """\
            from repro.obs import span
            with span("train.my_new_stage"):
                pass
        """)
        result = run_rule("SPAN-NAME-DISCIPLINE", path)
        assert len(result.findings) == 1
        assert "not in the repro.obs.names catalog" in result.findings[0].message

    def test_fstring_and_concat_names_fire(self, write_module):
        path = write_module("repro.serve.bad", """\
            registry.counter(f"serve.replica.{rid}.requests").inc()
            registry.gauge("serve." + stage).set(1.0)
        """)
        result = run_rule("SPAN-NAME-DISCIPLINE", path)
        assert len(result.findings) == 2
        assert all("computed metric name" in f.message
                   for f in result.findings)

    def test_template_helper_calls_are_clean(self, write_module):
        path = write_module("repro.serve.good", """\
            from repro.obs.names import serve_latency_stage, train_loss_component
            registry.histogram(serve_latency_stage("encode")).record(0.1)
            registry.gauge(train_loss_component(name)).set(0.5)
        """)
        assert run_rule("SPAN-NAME-DISCIPLINE", path).ok

    def test_bare_variable_names_are_allowed(self, write_module):
        path = write_module("repro.core.good", """\
            for name, value in snapshot["counters"].items():
                registry.counter(name).inc(value)
        """)
        assert run_rule("SPAN-NAME-DISCIPLINE", path).ok

    def test_exempt_modules_are_skipped(self, write_module):
        path = write_module("repro.obs.fleet", """\
            registry.counter("anything.goes.here").inc()
        """)
        assert run_rule("SPAN-NAME-DISCIPLINE", path).ok

    def test_noqa_suppresses(self, write_module):
        path = write_module("repro.train.bad", """\
            from repro.obs import span
            with span("train.oddball"):  # repro: noqa[SPAN-NAME-DISCIPLINE]
                pass
        """)
        result = run_rule("SPAN-NAME-DISCIPLINE", path)
        assert result.ok
        assert result.suppressed_count == 1


class TestRegistry:
    EXPECTED = ("DTYPE-DISCIPLINE", "SCATTER-CONTAINMENT", "NO-BARE-PRINT",
                "SEEDED-RANDOMNESS", "TELEMETRY-GUARD",
                "BLOCKING-IO-CONTAINMENT", "SPAN-NAME-DISCIPLINE",
                "LEASE-BALANCE", "LOCK-DISCIPLINE", "LOCK-ORDER",
                "FORK-SAFETY", "ASYNC-BLOCKING")

    def test_flow_rules_are_project_scoped(self):
        from repro.lint import get_rule, is_project_rule
        for rule_id in ("LEASE-BALANCE", "LOCK-DISCIPLINE", "LOCK-ORDER",
                        "FORK-SAFETY", "ASYNC-BLOCKING"):
            assert is_project_rule(get_rule(rule_id))

    def test_catalog_is_registered(self):
        from repro.lint import rule_ids
        ids = rule_ids()
        for expected in self.EXPECTED:
            assert expected in ids

    def test_every_rule_has_description(self):
        from repro.lint import all_rules
        for rule in all_rules():
            assert rule.rule_id and rule.description
