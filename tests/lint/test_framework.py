"""Framework mechanics: module naming, suppression parsing, baseline, reporters."""

import json

import pytest

from repro.lint import (Baseline, get_rule, lint_paths, module_name_for,
                        suppressions_for)
from repro.lint.baseline import BaselineMatcher, find_baseline
from repro.lint.framework import Finding, register
from repro.lint.reporters import render_json, render_text

BAD_RANDOM = """\
    import numpy as np
    x = np.random.rand(3)
"""


def _finding(module="repro.data.bad", rule="SEEDED-RANDOMNESS",
             code="x = np.random.rand(3)"):
    return Finding(rule=rule, path="tests/fake.py", module=module, line=2,
                   col=4, message="msg", code=code)


class TestModuleNameFor:
    def test_nested_package(self, write_module):
        path = write_module("repro.nn.layers", "x = 1\n")
        assert module_name_for(path) == "repro.nn.layers"

    def test_init_names_the_package(self, write_module):
        init = write_module("repro.nn.layers", "x = 1\n").parent / "__init__.py"
        assert module_name_for(init) == "repro.nn"

    def test_file_outside_any_package(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "script"


class TestSuppressionsFor:
    def test_specific_rule(self):
        supp = suppressions_for("x = 1  # repro: noqa[NO-BARE-PRINT]\n")
        assert supp == {1: {"NO-BARE-PRINT"}}

    def test_bare_noqa_is_wildcard(self):
        supp = suppressions_for("x = 1  # repro: noqa\n")
        assert supp == {1: {"*"}}

    def test_multiple_ids_and_case(self):
        supp = suppressions_for(
            "y = 2\nx = 1  # repro: noqa[no-bare-print, DTYPE-DISCIPLINE]\n")
        assert supp == {2: {"NO-BARE-PRINT", "DTYPE-DISCIPLINE"}}

    def test_plain_comments_ignored(self):
        assert suppressions_for("x = 1  # a normal comment\n") == {}


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([bad])
        assert not result.ok
        assert result.errors and "broken.py" in result.errors[0]

    def test_directory_recursion_and_dedup(self, write_module, tmp_path):
        path = write_module("repro.data.bad", BAD_RANDOM)
        result = lint_paths([tmp_path, path],
                            rules=[get_rule("SEEDED-RANDOMNESS")])
        assert len(result.findings) == 1  # listed twice, linted once

    def test_duplicate_rule_id_rejected(self):
        class Clash:
            rule_id = "NO-BARE-PRINT"
            description = "duplicate"

            def check(self, ctx):
                return iter(())

        with pytest.raises(ValueError, match="duplicate rule id"):
            register(Clash)


class TestBaseline:
    def test_round_trip_silences_then_resurfaces(self, write_module, tmp_path):
        path = write_module("repro.data.bad", BAD_RANDOM)
        rules = [get_rule("SEEDED-RANDOMNESS")]

        first = lint_paths([path], rules=rules)
        assert len(first.findings) == 1

        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        gated = lint_paths([path], rules=rules,
                           baseline=Baseline.load(baseline_path))
        assert gated.ok
        assert len(gated.baselined) == 1
        assert not gated.unused_baseline

        # Removing the baseline re-surfaces exactly the baselined finding.
        ungated = lint_paths([path], rules=rules)
        assert [f.key() for f in ungated.findings] == \
            [f.key() for f in gated.baselined]

    def test_multiset_matching(self, write_module, tmp_path):
        # Two identical violations, one baseline slot: one is still new.
        path = write_module("repro.data.bad", """\
            import numpy as np
            x = np.random.rand(3)
            y = np.random.rand(3)
        """)
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.from_findings([_finding(code="x = np.random.rand(3)")]) \
            .save(baseline_path)
        # The two lines differ ('x =' vs 'y ='), so only one matches.
        result = lint_paths([path], rules=[get_rule("SEEDED-RANDOMNESS")],
                            baseline=Baseline.load(baseline_path))
        assert len(result.baselined) == 1
        assert len(result.findings) == 1

    def test_stale_entries_are_flagged(self, write_module, tmp_path):
        path = write_module("repro.data.good", "x = 1\n")
        baseline_path = tmp_path / "lint-baseline.json"
        Baseline.from_findings([_finding()]).save(baseline_path)
        result = lint_paths([path], baseline=Baseline.load(baseline_path))
        assert result.ok  # stale entries warn, they do not fail the gate
        assert result.unused_baseline == [_finding().key()]

    def test_reasons_survive_regeneration(self, tmp_path):
        finding = _finding()
        previous = Baseline([{"module": finding.module, "rule": finding.rule,
                              "code": finding.code,
                              "reason": "documented on purpose"}])
        regenerated = Baseline.from_findings([finding], previous=previous)
        assert regenerated.entries[0]["reason"] == "documented on purpose"

    def test_load_rejects_malformed_files(self, tmp_path):
        bad = tmp_path / "lint-baseline.json"
        bad.write_text(json.dumps({"entries": [{"module": "m"}]}))
        with pytest.raises(ValueError, match="missing"):
            Baseline.load(bad)
        bad.write_text(json.dumps([1, 2]))
        with pytest.raises(ValueError, match="not a lint baseline"):
            Baseline.load(bad)

    def test_find_baseline_walks_ancestors(self, tmp_path):
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        target = tmp_path / "lint-baseline.json"
        target.write_text("{}")
        assert find_baseline(nested) == target

    def test_matcher_consumes_slots(self):
        finding = _finding()
        matcher = BaselineMatcher({finding.key(): 1})
        assert matcher.consume(finding)
        assert not matcher.consume(finding)
        assert matcher.unused() == []


class TestReporters:
    def test_text_clean_summary(self, write_module):
        path = write_module("repro.data.good", "x = 1\n")
        text = render_text(lint_paths([path]))
        assert text.startswith("clean (")

    def test_text_lists_findings_and_summary(self, write_module):
        path = write_module("repro.data.bad", BAD_RANDOM)
        result = lint_paths([path], rules=[get_rule("SEEDED-RANDOMNESS")])
        text = render_text(result, verbose=True)
        assert "SEEDED-RANDOMNESS" in text
        assert str(path) in text
        assert "1 finding(s)" in text
        assert "x = np.random.rand(3)" in text  # verbose shows the code

    def test_json_round_trips(self, write_module):
        path = write_module("repro.data.bad", BAD_RANDOM)
        result = lint_paths([path], rules=[get_rule("SEEDED-RANDOMNESS")])
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "SEEDED-RANDOMNESS"
        assert payload["findings"][0]["module"] == "repro.data.bad"
