"""Shared fixture helpers for the lint suite.

Rules scope themselves by dotted module name, which the framework derives
from ``__init__.py`` files on disk — so fixture snippets are written into a
real (throwaway) package tree under ``tmp_path`` rather than passed as
strings.
"""

import textwrap
from pathlib import Path

import pytest


def _write_module(root: Path, module: str, source: str) -> Path:
    """Write ``source`` as dotted ``module`` under ``root``, with packages."""
    parts = module.split(".")
    directory = root
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(source))
    return path


@pytest.fixture
def write_module(tmp_path):
    """``write_module("repro.nn.bad", src) -> Path`` inside this test's tmp."""

    def _write(module: str, source: str) -> Path:
        return _write_module(tmp_path, module, source)

    return _write
