"""Fixture tests for the flow-sensitive project rules (repro.lint.flow.rules).

Project rules see every fixture module at once, so tests lint the whole
throwaway package tree (``tmp_path``) rather than a single file.
"""

from repro.lint import get_rule, lint_paths


def run_project_rule(rule_id, root):
    return lint_paths([root], rules=[get_rule(rule_id)])


class TestLeaseBalance:
    def test_early_return_leak_fires(self, write_module, tmp_path):
        write_module("repro.train.bad", """\
            from repro.data.shm import ShmArena

            def leaky(flag):
                arena = ShmArena(1024, 2)
                if flag:
                    return None
                arena.close()
        """)
        result = run_project_rule("LEASE-BALANCE", tmp_path)
        assert len(result.findings) == 1
        assert "ShmArena" in result.findings[0].message
        assert "'arena'" in result.findings[0].message

    def test_try_finally_is_clean(self, write_module, tmp_path):
        write_module("repro.train.good", """\
            from repro.data.shm import ShmArena

            def balanced():
                arena = ShmArena(1024, 2)
                try:
                    work(arena)
                finally:
                    arena.close()
        """)
        assert run_project_rule("LEASE-BALANCE", tmp_path).ok

    def test_with_block_is_clean(self, write_module, tmp_path):
        write_module("repro.eval.good", """\
            from repro.data.shm import ShmArena

            def balanced():
                with ShmArena(1024, 2) as arena:
                    work(arena)
        """)
        assert run_project_rule("LEASE-BALANCE", tmp_path).ok

    def test_ownership_transfer_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.good", """\
            from repro.data.shm import ShmArena

            class Owner:
                def __init__(self):
                    self.arena = ShmArena(1024, 2)

                def close(self):
                    self.arena.close()

            def factory():
                return ShmArena(1024, 2)
        """)
        assert run_project_rule("LEASE-BALANCE", tmp_path).ok

    def test_anonymous_acquisition_fires(self, write_module, tmp_path):
        write_module("repro.train.bad", """\
            from repro.data.shm import ShmArena

            def anon():
                use(ShmArena(1024, 2))
        """)
        result = run_project_rule("LEASE-BALANCE", tmp_path)
        assert len(result.findings) == 1

    def test_noqa_suppresses(self, write_module, tmp_path):
        write_module("repro.train.bad", """\
            from repro.data.shm import ShmArena

            def leaky():
                arena = ShmArena(1024, 2)  # repro: noqa[LEASE-BALANCE]
                use(arena)
        """)
        result = run_project_rule("LEASE-BALANCE", tmp_path)
        assert result.ok
        assert result.suppressed_count == 1


class TestLockDiscipline:
    def test_sleep_under_lock_fires(self, write_module, tmp_path):
        write_module("repro.serve.bad", """\
            import threading
            import time

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        time.sleep(0.5)
        """)
        result = run_project_rule("LOCK-DISCIPLINE", tmp_path)
        assert len(result.findings) == 1
        assert "time.sleep" in result.findings[0].message

    def test_bare_acquire_fires(self, write_module, tmp_path):
        write_module("repro.serve.bad", """\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def manual(self):
                    self._lock.acquire()
                    self._lock.release()
        """)
        result = run_project_rule("LOCK-DISCIPLINE", tmp_path)
        assert any("bare .acquire()" in f.message for f in result.findings)

    def test_transitive_blocking_call_fires(self, write_module, tmp_path):
        write_module("repro.serve.bad", """\
            import threading
            import time

            def helper():
                time.sleep(1.0)

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        helper()
        """)
        result = run_project_rule("LOCK-DISCIPLINE", tmp_path)
        assert len(result.findings) == 1

    def test_quick_critical_section_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.good", """\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value
        """)
        assert run_project_rule("LOCK-DISCIPLINE", tmp_path).ok


class TestLockOrder:
    def test_inverted_order_cycle_fires(self, write_module, tmp_path):
        write_module("repro.serve.cycle", """\
            import threading

            class A:
                def __init__(self, b: "B"):
                    self._a_lock = threading.Lock()
                    self.b = b

                def one(self):
                    with self._a_lock:
                        self.b.two_inner()

                def one_inner(self):
                    with self._a_lock:
                        pass

            class B:
                def __init__(self, a: "A"):
                    self._b_lock = threading.Lock()
                    self.a = a

                def two(self):
                    with self._b_lock:
                        self.a.one_inner()

                def two_inner(self):
                    with self._b_lock:
                        pass
        """)
        result = run_project_rule("LOCK-ORDER", tmp_path)
        assert len(result.findings) == 1
        assert "lock-order cycle" in result.findings[0].message

    def test_consistent_order_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.ordered", """\
            import threading

            class A:
                def __init__(self, b: "B"):
                    self._a_lock = threading.Lock()
                    self.b = b

                def one(self):
                    with self._a_lock:
                        self.b.two_inner()

                def also_one(self):
                    with self._a_lock:
                        self.b.two_inner()

            class B:
                def __init__(self):
                    self._b_lock = threading.Lock()

                def two_inner(self):
                    with self._b_lock:
                        pass
        """)
        assert run_project_rule("LOCK-ORDER", tmp_path).ok

    def test_reentrant_same_lock_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.reentrant", """\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
        """)
        assert run_project_rule("LOCK-ORDER", tmp_path).ok


class TestForkSafety:
    def test_pool_outside_sanctioned_module_fires(self, write_module,
                                                  tmp_path):
        write_module("repro.analysis.bad", """\
            from repro.data.pipeline import WorkerPool

            def build():
                pool = WorkerPool(lambda: None, num_workers=2)
                return pool
        """)
        result = run_project_rule("FORK-SAFETY", tmp_path)
        assert len(result.findings) == 1
        assert "confined" in result.findings[0].message

    def test_thread_start_before_fork_fires(self, write_module, tmp_path):
        write_module("repro.train.ddp", """\
            import threading

            from repro.data.pipeline import WorkerPool

            def build():
                t = threading.Thread(target=print)
                t.start()
                pool = WorkerPool(lambda: None, num_workers=2)
                return pool
        """)
        result = run_project_rule("FORK-SAFETY", tmp_path)
        assert len(result.findings) == 1
        assert "thread" in result.findings[0].message

    def test_fork_then_thread_is_clean(self, write_module, tmp_path):
        write_module("repro.train.ddp", """\
            import threading

            from repro.data.pipeline import WorkerPool

            def build():
                pool = WorkerPool(lambda: None, num_workers=2)
                t = threading.Thread(target=print)
                t.start()
                return pool
        """)
        assert run_project_rule("FORK-SAFETY", tmp_path).ok

    def test_import_time_thread_start_fires(self, write_module, tmp_path):
        write_module("repro.train.bad", """\
            import threading

            _warmup_thread = threading.Thread(target=print)
            _warmup_thread.start()
        """)
        result = run_project_rule("FORK-SAFETY", tmp_path)
        assert len(result.findings) == 1
        assert "import time" in result.findings[0].message


class TestAsyncBlocking:
    def test_transitive_blocking_call_fires(self, write_module, tmp_path):
        write_module("repro.serve.badnet", """\
            import time

            def helper():
                time.sleep(0.1)

            async def handler(reader, writer):
                helper()
        """)
        result = run_project_rule("ASYNC-BLOCKING", tmp_path)
        assert len(result.findings) == 1
        assert "time.sleep" in result.findings[0].message

    def test_run_in_executor_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.goodnet", """\
            import asyncio
            import time

            def helper():
                time.sleep(0.1)

            async def handler(reader, writer):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, helper)
        """)
        assert run_project_rule("ASYNC-BLOCKING", tmp_path).ok

    def test_awaited_async_callee_is_clean(self, write_module, tmp_path):
        write_module("repro.serve.goodnet", """\
            import asyncio

            async def nap():
                await asyncio.sleep(0.1)

            async def handler(reader, writer):
                await nap()
        """)
        assert run_project_rule("ASYNC-BLOCKING", tmp_path).ok

    def test_any_repro_async_def_is_checked(self, write_module, tmp_path):
        # Not just repro.serve.net: an async def anywhere in repro stalls
        # whichever loop runs it, so direct blocking calls fire everywhere.
        write_module("repro.train.worker", """\
            import time

            async def helper():
                time.sleep(0.1)
        """)
        result = run_project_rule("ASYNC-BLOCKING", tmp_path)
        assert len(result.findings) == 1
        assert "time.sleep" in result.findings[0].message


class TestParallelParity:
    def test_jobs_output_matches_serial(self, write_module, tmp_path):
        write_module("repro.train.bad", """\
            import numpy as np
            from repro.data.shm import ShmArena

            def leaky(flag):
                arena = ShmArena(1024, 2)
                if flag:
                    return None
                arena.close()

            x = np.random.rand(3)
        """)
        write_module("repro.serve.bad", """\
            import threading
            import time

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        time.sleep(0.5)
        """)
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=4)
        as_tuples = lambda result: [  # noqa: E731
            (f.rule, f.path, f.line, f.col, f.message)
            for f in result.findings]
        assert as_tuples(serial) == as_tuples(parallel)
        assert len(serial.findings) >= 3
        assert serial.errors == parallel.errors
