"""Call-graph construction and resolution tests (repro.lint.flow.callgraph)."""

import ast
import textwrap
from pathlib import Path

from repro.lint import FileContext, ProjectContext
from repro.lint.flow import build_call_graph, project_call_graph


def contexts(**modules):
    ctxs = []
    for module, source in sorted(modules.items()):
        source = textwrap.dedent(source)
        dotted = module.replace("__", ".")
        ctxs.append(FileContext(
            path=Path(f"/fake/{dotted.replace('.', '/')}.py"),
            source=source, tree=ast.parse(source), module=dotted,
            display_path=f"{dotted}.py"))
    return ctxs


def graph(**modules):
    return build_call_graph(contexts(**modules))


class TestResolution:
    def test_local_function_call(self):
        cg = graph(pkg__a="""
            def helper():
                pass

            def main():
                helper()
        """)
        calls = cg.functions["pkg.a.main"].calls
        assert [c.target for c in calls] == ["pkg.a.helper"]

    def test_imported_function_call(self):
        cg = graph(
            pkg__a="""
                def helper():
                    pass
            """,
            pkg__b="""
                from pkg.a import helper

                def main():
                    helper()
            """)
        calls = cg.functions["pkg.b.main"].calls
        assert [c.target for c in calls] == ["pkg.a.helper"]

    def test_module_attr_call(self):
        cg = graph(
            pkg__a="""
                def helper():
                    pass
            """,
            pkg__b="""
                from pkg import a

                def main():
                    a.helper()
            """)
        calls = cg.functions["pkg.b.main"].calls
        assert [c.target for c in calls] == ["pkg.a.helper"]

    def test_self_method_call(self):
        cg = graph(pkg__a="""
            class C:
                def one(self):
                    self.two()

                def two(self):
                    pass
        """)
        calls = cg.functions["pkg.a.C.one"].calls
        assert [c.target for c in calls] == ["pkg.a.C.two"]

    def test_attr_typed_by_constructor_assignment(self):
        cg = graph(pkg__a="""
            class Worker:
                def run(self):
                    pass

            class Owner:
                def __init__(self):
                    self.worker = Worker()

                def go(self):
                    self.worker.run()
        """)
        calls = cg.functions["pkg.a.Owner.go"].calls
        assert [c.target for c in calls] == ["pkg.a.Worker.run"]

    def test_attr_typed_by_annotated_parameter(self):
        cg = graph(pkg__a="""
            class Worker:
                def run(self):
                    pass

            class Owner:
                def __init__(self, worker: "Worker"):
                    self.worker = worker

                def go(self):
                    self.worker.run()
        """)
        calls = cg.functions["pkg.a.Owner.go"].calls
        assert [c.target for c in calls] == ["pkg.a.Worker.run"]

    def test_local_variable_typed_by_constructor(self):
        cg = graph(pkg__a="""
            class Worker:
                def run(self):
                    pass

            def main():
                w = Worker()
                w.run()
        """)
        targets = [c.target for c in cg.functions["pkg.a.main"].calls]
        assert "pkg.a.Worker.run" in targets

    def test_unresolved_calls_stay_silent(self):
        cg = graph(pkg__a="""
            import numpy as np

            def main(thing):
                np.zeros(3)
                thing.whatever()
        """)
        assert [c for c in cg.functions["pkg.a.main"].calls
                if c.target is not None] == []

    def test_method_resolves_through_base_class(self):
        cg = graph(pkg__a="""
            class Base:
                def run(self):
                    pass

            class Child(Base):
                def go(self):
                    self.run()
        """)
        calls = cg.functions["pkg.a.Child.go"].calls
        assert [c.target for c in calls] == ["pkg.a.Base.run"]


class TestFindPath:
    def test_transitive_path_with_witness(self):
        cg = graph(pkg__a="""
            import time

            def leaf():
                time.sleep(1)

            def mid():
                leaf()

            def top():
                mid()
        """)

        def pred(info):
            return next((c for c in info.calls
                         if c.dotted == "time.sleep"), None)

        path = cg.find_path("pkg.a.top", pred)
        assert path is not None
        assert [q for q, _ in path] == ["pkg.a.top", "pkg.a.mid",
                                        "pkg.a.leaf"]

    def test_no_path_returns_none(self):
        cg = graph(pkg__a="""
            def harmless():
                pass

            def top():
                harmless()
        """)
        assert cg.find_path("pkg.a.top", lambda s: False) is None

    def test_recursion_terminates(self):
        cg = graph(pkg__a="""
            def ping():
                pong()

            def pong():
                ping()
        """)
        assert cg.find_path("pkg.a.ping", lambda s: False) is None


class TestProjectCache:
    def test_graph_is_cached_on_the_project(self):
        project = ProjectContext(contexts(pkg__a="""
            def f():
                pass
        """))
        first = project_call_graph(project)
        assert project_call_graph(project) is first
