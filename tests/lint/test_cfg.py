"""CFG lowering and lifecycle-analysis unit tests (repro.lint.flow)."""

import ast
import textwrap

from repro.lint.flow import (WithEnter, WithExit, build_cfg, find_leaks,
                             run_forward, step_states)


def cfg_of(source):
    """Build the CFG of the first function in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    func = next(n for n in ast.walk(tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)))
    return build_cfg(func)


def reachable(cfg):
    seen = {cfg.entry.index}
    work = [cfg.entry]
    while work:
        block = work.pop()
        for succ in block.succs:
            if succ.index not in seen:
                seen.add(succ.index)
                work.append(succ)
    return seen


def all_steps(cfg):
    return [step for block in cfg.blocks for step in block.steps]


class TestCfgShape:
    def test_straight_line_reaches_exit(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = a + 1
                return b
        """)
        assert cfg.exit.index in reachable(cfg)
        kinds = [type(s).__name__ for s in all_steps(cfg)]
        assert kinds == ["Assign", "Assign", "Return"]

    def test_if_produces_branch_and_join(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        # The fork block (holding the test expr) has two successors.
        fork = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.Name) for s in b.steps))
        assert len(fork.succs) == 2
        assert cfg.exit.index in reachable(cfg)

    def test_loop_has_back_edge(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    y = x
                return 0
        """)
        preds = cfg.preds()
        head = next(b for b in cfg.blocks
                    if any(isinstance(s, ast.Name) and s.id == "xs"
                           for s in b.steps))
        # head has >= 2 predecessors: loop entry and the body back edge.
        assert len(preds[head.index]) >= 2

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        steps = all_steps(cfg)
        assert not any(isinstance(s, ast.Assign) for s in steps)


class TestWithAndFinally:
    def test_with_emits_enter_and_exit_markers(self):
        cfg = cfg_of("""
            def f(lock):
                with lock:
                    x = 1
        """)
        steps = all_steps(cfg)
        assert any(isinstance(s, WithEnter) for s in steps)
        assert any(isinstance(s, WithExit) for s in steps)

    def test_early_return_routes_through_with_exit(self):
        cfg = cfg_of("""
            def f(lock, flag):
                with lock:
                    if flag:
                        return 1
                    x = 2
                return 0
        """)
        # Every block whose terminator is Return and that sits inside the
        # with must have a WithExit on its path to exit.
        exits = [s for s in all_steps(cfg) if isinstance(s, WithExit)]
        assert len(exits) >= 2  # early-return path + normal fall-through

    def test_finally_body_runs_on_early_return(self):
        cfg = cfg_of("""
            def f(res):
                try:
                    if res:
                        return 1
                    return 2
                finally:
                    res.close()
        """)
        closes = [s for s in all_steps(cfg)
                  if isinstance(s, ast.Expr)
                  and isinstance(s.value, ast.Call)
                  and isinstance(s.value.func, ast.Attribute)
                  and s.value.func.attr == "close"]
        # The finally body is rebuilt per crossing path (two returns plus
        # the exceptional propagate path).
        assert len(closes) >= 3

    def test_try_body_has_exceptional_edge_to_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    a = risky()
                    b = risky2()
                except ValueError:
                    handled = 1
                return 0
        """)
        handler_block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Assign)
                   and isinstance(s.targets[0], ast.Name)
                   and s.targets[0].id == "handled" for s in b.steps))
        preds = cfg.preds()
        dispatch = preds[handler_block.index]
        assert dispatch  # dispatch point exists and is reachable
        assert all(b.index in reachable(cfg) for b in dispatch)


class TestLifecycle:
    def leaks_in(self, source, ctor="Arena"):
        cfg = cfg_of(source)

        def acquire(call):
            target = call.func
            name = target.attr if isinstance(target, ast.Attribute) \
                else getattr(target, "id", None)
            return ctor if name == ctor else None

        return find_leaks(cfg, acquire)

    def test_unreleased_resource_leaks(self):
        leaked, anonymous = self.leaks_in("""
            def f():
                a = Arena()
                use(a)
        """)
        assert [r.var for r in leaked] == ["a"]
        assert not anonymous

    def test_close_on_every_path_is_clean(self):
        leaked, _ = self.leaks_in("""
            def f():
                a = Arena()
                try:
                    use(a)
                finally:
                    a.close()
        """)
        assert not leaked

    def test_early_return_path_leaks(self):
        leaked, _ = self.leaks_in("""
            def f(flag):
                a = Arena()
                if flag:
                    return None
                a.close()
        """)
        assert [r.var for r in leaked] == ["a"]

    def test_with_block_releases(self):
        leaked, _ = self.leaks_in("""
            def f():
                a = Arena()
                with a:
                    use(a)
        """)
        assert not leaked

    def test_ownership_transfer_is_not_a_leak(self):
        leaked, anonymous = self.leaks_in("""
            def f(self):
                a = Arena()
                self.arena = a
        """)
        assert not leaked
        assert not anonymous

    def test_return_of_fresh_resource_is_transfer(self):
        leaked, anonymous = self.leaks_in("""
            def f():
                return Arena()
        """)
        assert not leaked
        assert not anonymous

    def test_anonymous_acquisition_is_reported(self):
        _, anonymous = self.leaks_in("""
            def f():
                use(Arena())
        """)
        assert len(anonymous) == 1

    def test_plain_call_argument_is_a_borrow(self):
        leaked, _ = self.leaks_in("""
            def f():
                a = Arena()
                use(a)
                a.close()
        """)
        assert not leaked


class TestFixpoint:
    def test_run_forward_unions_over_paths(self):
        cfg = cfg_of("""
            def f(flag):
                if flag:
                    x = 1
                else:
                    y = 2
                z = 3
        """)

        def transfer(step, state):
            if isinstance(step, ast.Assign) and isinstance(
                    step.targets[0], ast.Name):
                return state | {step.targets[0].id}
            return state

        states = run_forward(cfg, transfer)
        assert {"x", "y", "z"} <= states[cfg.exit.index]

    def test_step_states_sees_state_before_step(self):
        cfg = cfg_of("""
            def f():
                x = 1
                y = 2
        """)

        def transfer(step, state):
            if isinstance(step, ast.Assign):
                return state | {step.targets[0].id}
            return state

        pairs = {step.targets[0].id: state
                 for step, state in step_states(cfg, transfer)
                 if isinstance(step, ast.Assign)}
        assert pairs["x"] == frozenset()
        assert pairs["y"] == frozenset({"x"})
