"""Tests shared by all neural baselines + scope-specific behavior checks."""

import numpy as np
import pytest

from repro.baselines import (BERT4Rec, CL4SRec, ComiRec, GRU4Rec, MBGRU, MBHTLite,
                             MBSASRec, SASRec)
from repro.data import NegativeSampler, collate
from repro.nn import Adam
from repro.nn.tensor import no_grad

DIM = 16


def build(name, dataset, graph):
    factories = {
        "GRU4Rec": lambda: GRU4Rec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "SASRec": lambda: SASRec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "BERT4Rec": lambda: BERT4Rec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "ComiRec": lambda: ComiRec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "CL4SRec": lambda: CL4SRec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "MBGRU": lambda: MBGRU(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "MBSASRec": lambda: MBSASRec(dataset.num_items, dataset.schema, dim=DIM, seed=0),
        "MBHTLite": lambda: MBHTLite(dataset.num_items, dataset.schema, graph,
                                     dim=DIM, seed=0),
    }
    return factories[name]()


ALL = ["GRU4Rec", "SASRec", "BERT4Rec", "ComiRec", "CL4SRec", "MBGRU", "MBSASRec",
       "MBHTLite"]
SINGLE_BEHAVIOR = ["GRU4Rec", "SASRec", "BERT4Rec", "ComiRec", "CL4SRec"]
MULTI_BEHAVIOR = ["MBGRU", "MBSASRec", "MBHTLite"]


@pytest.mark.parametrize("name", ALL)
class TestCommonContract:
    def test_score_shape_and_finiteness(self, name, tiny_dataset, tiny_graph,
                                        tiny_split, rng):
        model = build(name, tiny_dataset, tiny_graph)
        model.eval()
        batch = collate(tiny_split.test[:6], tiny_dataset.schema)
        candidates = rng.integers(1, tiny_dataset.num_items + 1, size=(6, 11))
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        assert scores.shape == (6, 11)
        assert np.isfinite(scores.numpy()).all()

    def test_one_training_step(self, name, tiny_dataset, tiny_graph, tiny_split, rng):
        model = build(name, tiny_dataset, tiny_graph)
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:16], tiny_dataset.schema)
        opt = Adam(model.parameters(), lr=1e-3)
        loss = model.training_loss(batch, sampler, num_negatives=8)
        loss.backward()
        opt.step()
        assert np.isfinite(loss.item())

    def test_deterministic_under_seed(self, name, tiny_dataset, tiny_graph, tiny_split):
        scores = []
        for _ in range(2):
            model = build(name, tiny_dataset, tiny_graph)
            model.eval()
            batch = collate(tiny_split.test[:3], tiny_dataset.schema)
            candidates = np.tile(np.arange(1, 8), (3, 1))
            with no_grad():
                scores.append(model.score_candidates(batch, candidates).numpy())
        assert np.allclose(scores[0], scores[1])


@pytest.mark.parametrize("name", SINGLE_BEHAVIOR)
class TestSingleBehaviorScope:
    def test_auxiliary_stream_ignored(self, name, tiny_dataset, tiny_graph, tiny_split):
        """Single-behavior models must not read auxiliary sequences."""
        model = build(name, tiny_dataset, tiny_graph)
        model.eval()
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = np.tile(np.arange(1, 9), (4, 1))
        with no_grad():
            before = model.score_candidates(batch, candidates).numpy()
            aux = tiny_dataset.schema.auxiliary[0]
            batch.items[aux][:] = 1
            batch.merged_items[:] = 1  # merged timeline also off-limits
            after = model.score_candidates(batch, candidates).numpy()
        assert np.allclose(before, after, atol=1e-5)


@pytest.mark.parametrize("name", MULTI_BEHAVIOR)
class TestMultiBehaviorScope:
    def test_merged_timeline_matters(self, name, tiny_dataset, tiny_graph, tiny_split):
        """Multi-behavior models must respond to the fused timeline."""
        model = build(name, tiny_dataset, tiny_graph)
        model.eval()
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = np.tile(np.arange(1, 9), (4, 1))
        with no_grad():
            before = model.score_candidates(batch, candidates).numpy()
            rng = np.random.default_rng(0)
            batch.merged_items[batch.merged_mask] = rng.integers(
                1, tiny_dataset.num_items + 1, size=int(batch.merged_mask.sum()))
            after = model.score_candidates(batch, candidates).numpy()
        assert not np.allclose(before, after, atol=1e-4)


class TestSpecifics:
    def test_comirec_multi_interest_shape(self, tiny_dataset, tiny_graph, tiny_split):
        model = ComiRec(tiny_dataset.num_items, tiny_dataset.schema, dim=DIM,
                        num_interests=4, seed=0)
        batch = collate(tiny_split.test[:5], tiny_dataset.schema)
        users = model.user_representation(batch)
        assert users.shape == (5, 4, DIM)

    def test_cl4srec_aug_loss_added(self, tiny_dataset, tiny_graph, tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:8], tiny_dataset.schema)
        with_aug = CL4SRec(tiny_dataset.num_items, tiny_dataset.schema, dim=DIM,
                           seed=0, lambda_aug=1.0)
        without = CL4SRec(tiny_dataset.num_items, tiny_dataset.schema, dim=DIM,
                          seed=0, lambda_aug=0.0)
        loss_with = with_aug.training_loss(batch, sampler, num_negatives=8).item()
        loss_without = without.training_loss(batch, sampler, num_negatives=8).item()
        assert loss_with != pytest.approx(loss_without)

    def test_mbht_table_cache(self, tiny_dataset, tiny_graph):
        model = MBHTLite(tiny_dataset.num_items, tiny_dataset.schema, tiny_graph,
                         dim=DIM, seed=0)
        model.eval()
        with no_grad():
            first = model.item_representations()
            assert model.item_representations() is first
        model.train()
        assert model._table_cache is None

    def test_bert4rec_is_bidirectional(self, tiny_dataset, tiny_graph):
        model = BERT4Rec(tiny_dataset.num_items, tiny_dataset.schema, dim=DIM, seed=0)
        assert model.encoder.causal is False

    def test_scope_validation(self, tiny_dataset):
        from repro.baselines.common import MergedSequenceModel
        with pytest.raises(ValueError):
            MergedSequenceModel(tiny_dataset.num_items, tiny_dataset.schema, DIM, 20,
                                np.random.default_rng(0), behavior_scope="weird")
        with pytest.raises(ValueError):
            MergedSequenceModel(tiny_dataset.num_items, tiny_dataset.schema, DIM, 20,
                                np.random.default_rng(0), behavior_scope="target",
                                use_behavior_embedding=True)
