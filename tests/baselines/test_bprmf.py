"""Tests for the BPR-MF baseline."""

import numpy as np
import pytest

from repro.baselines import BPRMF
from repro.data import NegativeSampler, collate
from repro.nn import Adam
from repro.nn.tensor import no_grad


@pytest.fixture
def model(tiny_dataset):
    return BPRMF(tiny_dataset.num_items, tiny_dataset.num_users, tiny_dataset.schema,
                 dim=16, seed=0)


class TestBPRMF:
    def test_scores_shape(self, model, tiny_dataset, tiny_split, rng):
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = rng.integers(1, tiny_dataset.num_items + 1, size=(4, 9))
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        assert scores.shape == (4, 9)

    def test_history_blind(self, model, tiny_dataset, tiny_split):
        """BPR-MF depends only on the user id, not on the sequences."""
        model.eval()
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = np.tile(np.arange(1, 9), (4, 1))
        with no_grad():
            before = model.score_candidates(batch, candidates).numpy()
            batch.merged_items[:] = 1
            for behavior in batch.items:
                batch.items[behavior][:] = 1
            after = model.score_candidates(batch, candidates).numpy()
        assert np.allclose(before, after)

    def test_unknown_user_rejected(self, model, tiny_dataset, tiny_split):
        batch = collate(tiny_split.test[:1], tiny_dataset.schema)
        batch.users[:] = 10_000
        with pytest.raises(IndexError):
            model.user_representation(batch)

    def test_bpr_training_separates_pos_from_neg(self, model, tiny_dataset,
                                                 tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        opt = Adam(model.parameters(), lr=0.01)
        batch = collate(tiny_split.train[:32], tiny_dataset.schema)
        losses = []
        for _ in range(20):
            opt.zero_grad()
            loss = model.training_loss(batch, sampler)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
        assert losses[-1] < np.log(2.0)  # better than random pairwise ordering
