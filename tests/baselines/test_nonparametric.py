"""Tests for Popularity and ItemKNN."""

import numpy as np
import pytest

from repro.baselines import ItemKNN, Popularity
from repro.data import SequenceExample, collate


class TestPopularity:
    def test_orders_by_count(self, tiny_dataset, tiny_split):
        model = Popularity(tiny_dataset.num_items).fit(tiny_dataset, target_only=False)
        popularity = tiny_dataset.item_popularity()
        batch = collate(tiny_split.test[:2], tiny_dataset.schema)
        candidates = np.array([[1, 2, 3], [4, 5, 6]])
        scores = model.score_candidates(batch, candidates).numpy()
        assert np.allclose(scores, popularity[candidates])

    def test_target_only_counts(self, toy_dataset):
        model = Popularity(toy_dataset.num_items).fit(toy_dataset, target_only=True)
        # item 4 has 2 buys, item 3 has 1 buy
        example = SequenceExample(user=0, inputs={"view": (1,), "buy": (1,)},
                                  merged_items=(1,), merged_behavior_ids=(0,), target=2)
        batch = collate([example], toy_dataset.schema)
        scores = model.score_candidates(batch, np.array([[4, 3]])).numpy()
        assert scores[0, 0] > scores[0, 1]

    def test_unfitted_raises(self, tiny_dataset, tiny_split):
        model = Popularity(tiny_dataset.num_items)
        batch = collate(tiny_split.test[:1], tiny_dataset.schema)
        with pytest.raises(RuntimeError):
            model.score_candidates(batch, np.array([[1]]))

    def test_training_loss_forbidden(self, tiny_dataset):
        with pytest.raises(RuntimeError):
            Popularity(tiny_dataset.num_items).training_loss()

    def test_no_parameters(self, tiny_dataset):
        assert Popularity(tiny_dataset.num_items).parameters() == []


class TestItemKNN:
    def test_scores_finite(self, tiny_dataset, tiny_split):
        model = ItemKNN(tiny_dataset.num_items).fit(tiny_dataset)
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = np.tile(np.arange(1, 11), (4, 1))
        scores = model.score_candidates(batch, candidates).numpy()
        assert scores.shape == (4, 10)
        assert np.isfinite(scores).all()

    def test_cobought_items_score_higher(self, toy_dataset, tiny_split):
        """Items bought together by users should be similar."""
        model = ItemKNN(toy_dataset.num_items, target_only=True).fit(toy_dataset)
        sim = model._similarity.toarray()
        # Users 0 and 2 both bought items 1 and 2 → positive similarity.
        assert sim[1, 2] > 0
        # Item 4 is bought only by user 1, who never bought item 3.
        assert sim[4, 3] == 0

    def test_unfitted_raises(self, tiny_dataset, tiny_split):
        model = ItemKNN(tiny_dataset.num_items)
        batch = collate(tiny_split.test[:1], tiny_dataset.schema)
        with pytest.raises(RuntimeError):
            model.score_candidates(batch, np.array([[1]]))

    def test_invalid_decay(self, tiny_dataset):
        with pytest.raises(ValueError):
            ItemKNN(tiny_dataset.num_items, decay=0.0)

    def test_empty_history_scores_zero(self, tiny_dataset, tiny_split):
        model = ItemKNN(tiny_dataset.num_items).fit(tiny_dataset)
        batch = collate(tiny_split.test[:1], tiny_dataset.schema)
        batch.items[tiny_dataset.schema.target][:] = 0
        batch.masks[tiny_dataset.schema.target][:] = False
        scores = model.score_candidates(batch, np.array([[1, 2]])).numpy()
        assert np.allclose(scores, 0.0)
