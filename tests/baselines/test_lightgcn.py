"""Tests for the LightGCN graph-CF baseline."""

import numpy as np
import pytest

from repro.baselines import LightGCN, build_bipartite_adjacency
from repro.data import NegativeSampler, collate, drop_holdout_targets
from repro.nn import Adam
from repro.nn.tensor import no_grad


@pytest.fixture
def model(tiny_dataset):
    train_view = drop_holdout_targets(tiny_dataset, 2)
    return LightGCN(tiny_dataset.num_items, tiny_dataset.num_users, train_view,
                    dim=16, num_layers=2, seed=0)


class TestAdjacency:
    def test_symmetric_and_normalized(self, tiny_dataset):
        adjacency = build_bipartite_adjacency(tiny_dataset)
        dense = adjacency.toarray()
        assert np.allclose(dense, dense.T, atol=1e-10)
        # Spectral radius of the symmetric-normalized adjacency is <= 1.
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.max() <= 1.0 + 1e-6

    def test_padding_item_isolated(self, tiny_dataset):
        adjacency = build_bipartite_adjacency(tiny_dataset)
        num_users = max(tiny_dataset.users) + 1
        assert adjacency[num_users].nnz == 0  # item id 0 row

    def test_behavior_weights_respected(self, toy_dataset):
        heavy = build_bipartite_adjacency(toy_dataset, {"view": 0.0, "buy": 1.0})
        light = build_bipartite_adjacency(toy_dataset, {"view": 1.0, "buy": 1.0})
        assert heavy.nnz <= light.nnz


class TestLightGCN:
    def test_scores_shape(self, model, tiny_dataset, tiny_split, rng):
        batch = collate(tiny_split.test[:4], tiny_dataset.schema)
        candidates = rng.integers(1, tiny_dataset.num_items + 1, size=(4, 7))
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        assert scores.shape == (4, 7)
        assert np.isfinite(scores.numpy()).all()

    def test_eval_cache(self, model):
        model.eval()
        with no_grad():
            first = model.propagate()
            assert model.propagate() is first
        model.train()
        assert model._cache is None

    def test_training_improves_bpr(self, model, tiny_dataset, tiny_split, rng):
        sampler = NegativeSampler(tiny_dataset, rng)
        batch = collate(tiny_split.train[:32], tiny_dataset.schema)
        opt = Adam(model.parameters(), lr=0.02)
        losses = []
        for _ in range(15):
            opt.zero_grad()
            loss = model.training_loss(batch, sampler)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_propagation_layers_required(self, tiny_dataset):
        with pytest.raises(ValueError):
            LightGCN(tiny_dataset.num_items, tiny_dataset.num_users, tiny_dataset,
                     num_layers=0)

    def test_unknown_user_rejected(self, model, tiny_dataset, tiny_split):
        batch = collate(tiny_split.test[:1], tiny_dataset.schema)
        batch.users[:] = 99_999
        with pytest.raises(IndexError):
            model.user_representation(batch)
