"""P2 — online serving: micro-batched vs naive per-request, exact vs IVF.

Two questions about the serving subsystem, answered with numbers:

1. **Throughput** — concurrent clients hammer a
   :class:`~repro.serve.service.RecommenderService` twice: once with
   micro-batching disabled (``max_batch=1``: every request pays its own
   encoder forward) and once with it enabled.  Reports QPS plus p50/p99
   end-to-end latency for both, and asserts the micro-batched service wins
   on throughput whenever it actually forms batches (mean size >= 8).
2. **Recall** — the IVF index's top-k against the exact backend at the
   default probe width and with all partitions probed (which must be
   lossless).  Reports mean recall@k over served users.

Writes ``benchmarks/results/BENCH_P2.json``.

Runnable both ways:
    pytest -m perf benchmarks/bench_p2_serving.py
    python benchmarks/bench_p2_serving.py

Environment knobs:
    REPRO_PERF_SCALE               dataset scale factor (default 0.4)
    REPRO_PERF_SERVE_REQUESTS      requests per serving mode (default 192)
    REPRO_PERF_SERVE_CLIENTS       concurrent client threads (default 16)
    REPRO_PERF_SERVE_MIN_SPEEDUP   QPS speedup floor for the micro-batched
                                   mode (default 1.0; set 0 for smoke runs)
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.batching import collate
from repro.experiments import ExperimentContext, build_model
from repro.serve import (ExactIndex, HistoryStore, IVFIndex,
                         RecommenderService, build_encoder, export_artifact,
                         load_artifact, topk_overlap)

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
SERVE_REQUESTS = int(os.environ.get("REPRO_PERF_SERVE_REQUESTS", "192"))
SERVE_CLIENTS = int(os.environ.get("REPRO_PERF_SERVE_CLIENTS", "16"))
SERVE_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_SERVE_MIN_SPEEDUP", "1.0"))
PERF_DIM = 32
TOP_K = 10

pytestmark = pytest.mark.perf


def _exported_artifact():
    """A frozen artifact plus the corpus it was exported from.

    Weights are untrained — serving cost and index structure do not depend
    on training, and skipping it keeps the benchmark about the request path.
    """
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    path = Path(tempfile.mkdtemp(prefix="repro-bench-p2-")) / "artifact.npz"
    export_artifact(model, path)
    return load_artifact(path), context.dataset


def _drive(artifact, dataset, max_batch: int) -> dict:
    """QPS and latency percentiles for one service configuration.

    ``cache_capacity=1`` neutralizes the interest cache (users cycle, so no
    entry survives until its next use): every request pays a real encode and
    the comparison isolates micro-batching.
    """
    history = HistoryStore.from_dataset(dataset)
    users = history.users
    requests = [users[i % len(users)] for i in range(SERVE_REQUESTS)]
    with RecommenderService(artifact, history, index_backend="exact",
                            max_batch=max_batch, max_wait_ms=2.0,
                            cache_capacity=1) as service:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=SERVE_CLIENTS) as pool:
            list(pool.map(lambda user: service.recommend(user, k=TOP_K),
                          requests))
        wall = time.perf_counter() - started
        total = service.metrics.stages["total"]
        return {
            "max_batch": max_batch,
            "requests": SERVE_REQUESTS,
            "clients": SERVE_CLIENTS,
            "wall_seconds": wall,
            "qps": SERVE_REQUESTS / wall,
            "p50_ms": total.percentile(50.0) * 1e3,
            "p99_ms": total.percentile(99.0) * 1e3,
            "mean_batch_size": service.metrics.mean_batch_size(),
        }


def _measure_recall(artifact, dataset) -> dict:
    """Mean recall@k of the IVF index vs exact over every user's interests."""
    history = HistoryStore.from_dataset(dataset)
    encoder = build_encoder(artifact)
    users = history.users
    batch = collate([history.example(user) for user in users], history.schema)
    interests = encoder.interests(batch)
    vectors = artifact.item_vectors()
    exact = ExactIndex(vectors, score_mode=encoder.score_mode,
                       score_pow=encoder.score_pow)
    nlist = max(1, int(round(np.sqrt(len(vectors)))))
    variants = {
        "ivf_default": IVFIndex(vectors, nlist=nlist, seed=1,
                                score_mode=encoder.score_mode,
                                score_pow=encoder.score_pow),
        "ivf_all_probes": IVFIndex(vectors, nlist=nlist, nprobe=nlist, seed=1,
                                   score_mode=encoder.score_mode,
                                   score_pow=encoder.score_pow),
    }
    report = {"k": TOP_K, "nlist": nlist, "users": len(users), "variants": {}}
    for name, index in variants.items():
        recalls, scored = [], []
        for row, user in enumerate(users):
            exclude = history.seen(user)
            reference = exact.search(interests[row], TOP_K, exclude=exclude)
            approx = index.search(interests[row], TOP_K, exclude=exclude)
            recalls.append(topk_overlap(approx.items, reference.items))
            scored.append(approx.candidates_scored)
        report["variants"][name] = {
            "nprobe": index.nprobe,
            "recall_at_k": float(np.mean(recalls)),
            "mean_candidates_scored": float(np.mean(scored)),
            "catalog_size": index.num_items,
        }
    return report


def run_bench() -> dict:
    """Measure both serving modes and the index recall; write BENCH_P2.json."""
    artifact, dataset = _exported_artifact()
    naive = _drive(artifact, dataset, max_batch=1)
    batched = _drive(artifact, dataset, max_batch=16)
    recall = _measure_recall(artifact, dataset)
    payload = {
        "benchmark": "P2",
        "config": {"preset": "taobao", "scale": PERF_SCALE, "dim": PERF_DIM,
                   "k": TOP_K, "requests": SERVE_REQUESTS,
                   "clients": SERVE_CLIENTS,
                   "min_speedup": SERVE_MIN_SPEEDUP},
        "serving": {
            "naive": naive,
            "micro_batched": batched,
            "qps_speedup": batched["qps"] / naive["qps"],
        },
        "recall": recall,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P2.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for name, run in (("naive", naive), ("micro-batched", batched)):
        print(f"  {name:13s} qps={run['qps']:8.1f}  p50={run['p50_ms']:7.2f}ms "
              f"p99={run['p99_ms']:7.2f}ms  mean batch={run['mean_batch_size']:.1f}")
    print(f"  qps speedup {payload['serving']['qps_speedup']:.2f}x")
    for name, numbers in recall["variants"].items():
        print(f"  {name:14s} nprobe={numbers['nprobe']:3d} "
              f"recall@{TOP_K}={numbers['recall_at_k']:.3f} "
              f"candidates={numbers['mean_candidates_scored']:.0f}"
              f"/{numbers['catalog_size']}")
    print(f"  written to {out_path}")
    return payload


def _check(payload: dict) -> None:
    serving = payload["serving"]
    if serving["micro_batched"]["mean_batch_size"] >= 8:
        assert serving["qps_speedup"] >= SERVE_MIN_SPEEDUP, (
            f"micro-batched QPS speedup {serving['qps_speedup']:.2f}x below "
            f"the {SERVE_MIN_SPEEDUP:.2f}x floor despite batches forming")
    variants = payload["recall"]["variants"]
    assert variants["ivf_all_probes"]["recall_at_k"] == 1.0, \
        "probing every partition must be lossless"
    assert 0.0 <= variants["ivf_default"]["recall_at_k"] <= 1.0
    assert variants["ivf_default"]["mean_candidates_scored"] < \
        variants["ivf_default"]["catalog_size"]


def test_p2_serving():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P2.json").exists()
    _check(payload)


if __name__ == "__main__":
    _check(run_bench())
