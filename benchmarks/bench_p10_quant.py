"""P10 — quantized, cache-resident retrieval: recall/latency/memory Pareto.

Three questions about the quantized serving tier, answered with numbers:

1. **Pareto** — for every index backend (exact, IVF, HNSW, int8 SQ, PQ,
   IVF+PQ; quantized ones with and without the exact refine step): mean
   recall@k vs the exact backend, p50/p99 search latency, and the bytes that
   must stay resident for the scan.  Asserts that at least one quantized
   variant achieves the table-memory reduction floor while holding the
   recall floor, at a p99 no worse than the ``hnsw_ef48`` reference.
2. **Page-cache sharing** — two concurrent replica processes load the same
   inflated artifact, once as legacy ``npz`` (private decompressed copies)
   and once as the mmap'd ``dir`` bundle (file-backed pages shared through
   the page cache), and report their private RSS from
   ``/proc/self/smaps_rollup``.  Asserts the per-replica private footprint
   of the bundle is measurably below the npz one.
3. **Cold spawn** — time to stand up a ``RecommenderService`` from a bundle
   that ships a serialized HNSW structure (O(mmap) attach) vs rebuilding the
   graph from scratch.  Asserts the attach-speedup floor.

Writes ``benchmarks/results/BENCH_P10.json``.

Runnable both ways:
    pytest -m perf benchmarks/bench_p10_quant.py
    python benchmarks/bench_p10_quant.py

Environment knobs:
    REPRO_PERF_SCALE                      dataset scale factor (default 0.4)
    REPRO_PERF_QUANT_MIN_REDUCTION        table-memory reduction floor a
                                          qualifying quantized variant must
                                          reach (default 4.0)
    REPRO_PERF_QUANT_MIN_RECALL           recall@k floor for the same
                                          variant (default 0.95)
    REPRO_PERF_QUANT_P99_SLACK            qualifying variants' best p99 must
                                          be <= hnsw_ef48 p99 * slack
                                          (default 1.0; <= 0 disables)
    REPRO_PERF_QUANT_MIN_SPAWN_SPEEDUP    serialized-attach vs rebuild
                                          speedup floor (default 5.0; set 0
                                          for smoke runs)
    REPRO_PERF_QUANT_RSS_MB               inflated item-table size for the
                                          RSS probe (default 24)
    REPRO_PERF_QUANT_CATALOG              synthetic catalog size for the
                                          Pareto sweep (default 8000; the
                                          tiny test corpus is codebook-
                                          overhead-dominated)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.batching import collate
from repro.experiments import ExperimentContext, build_model
from repro.serve import (ExactIndex, HistoryStore, HNSWIndex, IVFIndex,
                         IVFPQIndex, PQIndex, RecommenderService, SQIndex,
                         build_encoder, export_artifact, load_artifact,
                         topk_overlap, write_artifact)

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
MIN_REDUCTION = float(os.environ.get("REPRO_PERF_QUANT_MIN_REDUCTION", "4.0"))
MIN_RECALL = float(os.environ.get("REPRO_PERF_QUANT_MIN_RECALL", "0.95"))
P99_SLACK = float(os.environ.get("REPRO_PERF_QUANT_P99_SLACK", "1.0"))
MIN_SPAWN_SPEEDUP = float(
    os.environ.get("REPRO_PERF_QUANT_MIN_SPAWN_SPEEDUP", "5.0"))
RSS_MB = float(os.environ.get("REPRO_PERF_QUANT_RSS_MB", "24"))
QUANT_CATALOG = int(os.environ.get("REPRO_PERF_QUANT_CATALOG", "8000"))
PERF_DIM = 32
TOP_K = 10

pytestmark = pytest.mark.perf


def _exported_artifact():
    """A frozen artifact plus the corpus it was exported from (untrained:
    index structure and scan cost do not depend on the weights)."""
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-p10-"))
    path = export_artifact(model, root / "artifact.npz")
    return load_artifact(path), context.dataset, root


# ---------------------------------------------------------------------------
# 1. recall / latency / resident-bytes Pareto
# ---------------------------------------------------------------------------
def _variants(vectors, score_mode, score_pow):
    common = {"score_mode": score_mode, "score_pow": score_pow}
    return {
        "exact": ExactIndex(vectors, **common),
        "ivf_auto": IVFIndex(vectors, seed=1, **common),
        "hnsw_ef48": HNSWIndex(vectors, M=16, ef_search=48, seed=1, **common),
        "exact_sq": SQIndex(vectors, **common),
        "exact_sq_r64": SQIndex(vectors, refine=64, **common),
        "pq_m4": PQIndex(vectors, m=4, seed=1, **common),
        "pq_m8_r128": PQIndex(vectors, m=8, refine=128, seed=1, **common),
        "ivf_pq_m8_r128": IVFPQIndex(vectors, m=8, refine=128, seed=1,
                                     **common),
    }


def _synthetic_catalog(vectors: np.ndarray) -> np.ndarray:
    """Grow the tiny test catalog to serving scale: tile + per-copy noise.

    The corpus the artifact was exported from has a few hundred items, where
    the PQ codebooks (a fixed ~32 KB at ``m=8, ksub=256``) dominate the code
    savings.  Quantization is a *large-catalog* lever, so the Pareto sweep
    runs over a deterministic synthetic catalog that keeps the real table's
    scale statistics; recall is always measured against the exact backend on
    the same catalog.
    """
    count = max(QUANT_CATALOG, vectors.shape[0])
    reps = -(-count // vectors.shape[0])
    tiled = np.tile(vectors, (reps, 1))[:count]
    rng = np.random.default_rng(7)
    noise = rng.normal(scale=float(vectors.std()) * 0.5, size=tiled.shape)
    return (tiled + noise).astype(np.float32)


def _measure_pareto(artifact, dataset) -> dict:
    history = HistoryStore.from_dataset(dataset)
    encoder = build_encoder(artifact)
    users = history.users
    batch = collate([history.example(user) for user in users], history.schema)
    interests = encoder.interests(batch)
    excludes = [history.seen(user) for user in users]
    vectors = _synthetic_catalog(artifact.item_vectors())
    table_bytes = vectors.nbytes
    variants = _variants(vectors, encoder.score_mode, encoder.score_pow)
    exact = variants["exact"]
    references = [exact.search(interests[row], TOP_K, exclude=excludes[row])
                  for row in range(len(users))]
    report = {"k": TOP_K, "users": len(users),
              "catalog_size": int(vectors.shape[0]), "dim": PERF_DIM,
              "table_bytes": int(table_bytes), "variants": {}}
    for name, index in variants.items():
        recalls, latencies, scored, refined = [], [], [], []
        for row in range(len(users)):
            started = time.perf_counter()
            result = index.search(interests[row], TOP_K,
                                  exclude=excludes[row])
            latencies.append(time.perf_counter() - started)
            recalls.append(topk_overlap(result.items, references[row].items))
            scored.append(result.candidates_scored)
            refined.append(result.refined)
        resident = int(index.resident_bytes())
        report["variants"][name] = {
            "backend": index.backend,
            "recall_at_k": float(np.mean(recalls)),
            "p50_ms": float(np.percentile(latencies, 50.0) * 1e3),
            "p99_ms": float(np.percentile(latencies, 99.0) * 1e3),
            "resident_bytes": resident,
            "table_reduction": float(table_bytes / resident),
            "mean_candidates_scored": float(np.mean(scored)),
            "mean_refined": float(np.mean(refined)),
        }
    return report


# ---------------------------------------------------------------------------
# 2. per-replica private RSS: npz copies vs mmap'd bundle
# ---------------------------------------------------------------------------
_RSS_CHILD = """\
import json, sys, time
import numpy as np
from repro.serve import load_artifact

artifact = load_artifact(sys.argv[1])
# Fault every page of every array in, exactly like a scanning replica.
touched = float(np.asarray(artifact.item_table, dtype=np.float32).sum())
touched += sum(float(np.asarray(v, dtype=np.float64).sum())
               for v in artifact.params.values())
time.sleep(float(sys.argv[2]))  # hold the mapping while the peer measures
private = 0
for line in open("/proc/self/smaps_rollup"):
    if line.startswith(("Private_Clean:", "Private_Dirty:")):
        private += int(line.split()[1])  # kB
print(json.dumps({"private_kb": private, "touched": touched}))
"""


def _inflated_artifact(artifact, root: Path):
    """Tile the item table up to ~RSS_MB so footprints dominate noise."""
    table = np.asarray(artifact.item_table, dtype=np.float32)
    reps = max(1, int(RSS_MB * 1e6 / max(1, table.nbytes)))
    big = np.tile(table, (reps, 1))
    inflated = replace(artifact, item_table=big,
                       num_items=int(big.shape[0]) - 1)
    npz_path = write_artifact(inflated, root / "inflated.npz")
    dir_path = write_artifact(inflated, root / "inflated.artifact",
                              artifact_format="dir")
    return npz_path, dir_path, int(big.nbytes)


def _replica_private_kb(path: Path, replicas: int = 2) -> list[int]:
    hold = 3.0
    procs = [subprocess.Popen([sys.executable, "-c", _RSS_CHILD, str(path),
                               str(hold)], stdout=subprocess.PIPE)
             for _ in range(replicas)]
    outputs = [proc.communicate(timeout=120)[0] for proc in procs]
    assert all(proc.returncode == 0 for proc in procs)
    return [json.loads(out)["private_kb"] for out in outputs]


def _measure_rss(artifact, root: Path) -> dict:
    npz_path, dir_path, table_bytes = _inflated_artifact(artifact, root)
    npz_private = _replica_private_kb(npz_path)
    dir_private = _replica_private_kb(dir_path)
    return {
        "replicas": 2,
        "inflated_table_bytes": table_bytes,
        "npz_private_kb": npz_private,
        "dir_private_kb": dir_private,
        "npz_mean_private_kb": float(np.mean(npz_private)),
        "dir_mean_private_kb": float(np.mean(dir_private)),
    }


# ---------------------------------------------------------------------------
# 3. cold spawn: serialized-index attach vs rebuild
# ---------------------------------------------------------------------------
def _measure_cold_spawn(artifact, dataset, root: Path) -> dict:
    bundle_path = write_artifact(
        artifact, root / "prebuilt.artifact", artifact_format="dir",
        prebuilt=("hnsw",), index_options={"hnsw": {"seed": 1}})
    bundle = load_artifact(bundle_path)
    history = HistoryStore.from_dataset(dataset)

    def spawn(use_prebuilt: bool) -> tuple[float, bool]:
        started = time.perf_counter()
        service = RecommenderService(bundle, history, index_backend="hnsw",
                                     index_options={"seed": 1} if
                                     not use_prebuilt else {},
                                     use_prebuilt=use_prebuilt)
        elapsed = time.perf_counter() - started
        attached = service.stats()["index"]["prebuilt"]
        service.close()
        return elapsed, attached

    rebuild_seconds, rebuilt_attached = spawn(use_prebuilt=False)
    attach_seconds, attached = min(
        (spawn(use_prebuilt=True) for _ in range(3)), key=lambda r: r[0])
    assert attached and not rebuilt_attached
    return {
        "backend": "hnsw",
        "rebuild_seconds": rebuild_seconds,
        "attach_seconds": attach_seconds,
        "spawn_speedup": rebuild_seconds / attach_seconds,
    }


def run_bench() -> dict:
    artifact, dataset, root = _exported_artifact()
    pareto = _measure_pareto(artifact, dataset)
    rss = _measure_rss(artifact, root)
    spawn = _measure_cold_spawn(artifact, dataset, root)
    payload = {
        "benchmark": "P10",
        "config": {"preset": "taobao", "scale": PERF_SCALE, "dim": PERF_DIM,
                   "k": TOP_K, "min_reduction": MIN_REDUCTION,
                   "min_recall": MIN_RECALL, "p99_slack": P99_SLACK,
                   "min_spawn_speedup": MIN_SPAWN_SPEEDUP},
        "pareto": pareto,
        "rss": rss,
        "cold_spawn": spawn,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P10.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for name, row in pareto["variants"].items():
        print(f"  {name:14s} recall@{TOP_K}={row['recall_at_k']:.3f}  "
              f"p50={row['p50_ms']:6.2f}ms p99={row['p99_ms']:6.2f}ms  "
              f"resident={row['resident_bytes']:>9d}B "
              f"({row['table_reduction']:5.1f}x smaller)")
    print(f"  private RSS/replica: npz={rss['npz_mean_private_kb']:.0f}kB "
          f"dir={rss['dir_mean_private_kb']:.0f}kB")
    print(f"  cold spawn: rebuild={spawn['rebuild_seconds'] * 1e3:.1f}ms "
          f"attach={spawn['attach_seconds'] * 1e3:.1f}ms "
          f"({spawn['spawn_speedup']:.1f}x)")
    print(f"  written to {out_path}")
    return payload


def _check(payload: dict) -> None:
    variants = payload["pareto"]["variants"]
    quantized = {name: row for name, row in variants.items()
                 if row["backend"] in ("exact_sq", "pq", "ivf_pq")}
    qualifying = {name: row for name, row in quantized.items()
                  if row["table_reduction"] >= MIN_REDUCTION
                  and row["recall_at_k"] >= MIN_RECALL}
    observed = {name: (round(row["table_reduction"], 1),
                       round(row["recall_at_k"], 3))
                for name, row in quantized.items()}
    assert qualifying, (
        f"no quantized variant reached {MIN_REDUCTION:.1f}x reduction at "
        f"recall@{TOP_K} >= {MIN_RECALL}: {observed}")
    if P99_SLACK > 0:
        reference = variants["hnsw_ef48"]["p99_ms"]
        best = min(row["p99_ms"] for row in qualifying.values())
        assert best <= reference * P99_SLACK, (
            f"qualifying quantized p99 {best:.2f}ms worse than hnsw_ef48 "
            f"{reference:.2f}ms * {P99_SLACK}")
    rss = payload["rss"]
    assert rss["dir_mean_private_kb"] < rss["npz_mean_private_kb"], (
        f"mmap'd bundle private RSS {rss['dir_mean_private_kb']:.0f}kB not "
        f"below npz {rss['npz_mean_private_kb']:.0f}kB")
    if MIN_SPAWN_SPEEDUP > 0:
        speedup = payload["cold_spawn"]["spawn_speedup"]
        assert speedup >= MIN_SPAWN_SPEEDUP, (
            f"serialized-index attach only {speedup:.1f}x faster than "
            f"rebuild (floor {MIN_SPAWN_SPEEDUP:.1f}x)")


def test_p10_quant():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P10.json").exists()
    _check(payload)


if __name__ == "__main__":
    _check(run_bench())
