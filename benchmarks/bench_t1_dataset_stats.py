"""T1 — dataset statistics table (generator calibration check)."""

from common import BENCH_SCALE, run_and_report


def test_t1_dataset_stats(benchmark):
    result = run_and_report(benchmark, "T1", scale=BENCH_SCALE)
    assert len(result.rows) == 3
    for preset, stats in result.raw.items():
        # The behavior funnel must hold: the dense root behavior dominates.
        per_behavior = stats.interactions_per_behavior
        root = stats.interactions_per_behavior[list(per_behavior)[0]]
        assert root == max(per_behavior.values())
        # Sparse regime: unique (user, item) density below 15%.
        assert stats.density < 0.15
        # Target behavior is the sparsest or near-sparsest stream.
        target_count = per_behavior[list(per_behavior)[-1]]
        assert target_count <= root
