"""P8 — fleet observability: correlation correctness and enabled-cost bound.

Runs one closed-loop load (real TCP socket, 2 forked replicas) twice over
the same artifact: telemetry **disabled** (the baseline every request pays
anyway) and telemetry **enabled** with a JSON-lines event file plus replica
spools.  The benchmark then answers two questions with numbers:

1. **Correlation correctness** — after the enabled run, one
   :func:`repro.obs.collect_fleet` pass over the event file must recover the
   front-end process and both replica spools, every ``replica.request`` span
   must join a front-end ``net.request`` tree with the same ``request_id``,
   and the merged fleet counters must equal the per-process sums exactly.
2. **Enabled cost** — served p99 with full fleet telemetry on must stay
   within ``REPRO_PERF_OBS_MAX_REGRESSION`` (default 5%) of the disabled
   baseline.  On hosts with a single CPU the front-end, two replicas, the
   load generator *and* the event writer all contend for one core, so the
   latency assertion is waived there (the correctness assertions are not).

Writes ``benchmarks/results/BENCH_P8.json``.

Runnable both ways:
    pytest -m perf benchmarks/bench_p8_fleet_obs.py
    python benchmarks/bench_p8_fleet_obs.py

Environment knobs:
    REPRO_PERF_SCALE                dataset scale factor (default 0.4)
    REPRO_PERF_NET_REQUESTS         load-gen requests per run (default 240)
    REPRO_PERF_NET_CONNECTIONS      persistent client connections (default 4)
    REPRO_PERF_OBS_MAX_REGRESSION   p99 regression bound for the enabled run
                                    (default 0.05; 0 disables the assertion)
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from common import RESULTS_DIR

from repro.experiments import ExperimentContext, build_model
from repro.obs import collect_fleet, read_events_tolerant, telemetry_session
from repro.serve import (HistoryStore, NetServer, build_backend,
                         export_artifact, load_artifact, run_load)

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
NET_REQUESTS = int(os.environ.get("REPRO_PERF_NET_REQUESTS", "240"))
NET_CONNECTIONS = int(os.environ.get("REPRO_PERF_NET_CONNECTIONS", "4"))
MAX_REGRESSION = float(os.environ.get("REPRO_PERF_OBS_MAX_REGRESSION", "0.05"))
PERF_DIM = 32
TOP_K = 10
WARMUP = 24
REPLICAS = 2

pytestmark = pytest.mark.perf


def _exported_artifact():
    """A frozen artifact plus its corpus (untrained weights — the request
    path does not depend on training)."""
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    path = Path(tempfile.mkdtemp(prefix="repro-bench-p8-")) / "artifact.npz"
    export_artifact(model, path)
    return load_artifact(path), context.dataset


def _serve_load(artifact, dataset, registry=None) -> dict:
    """One closed-loop load through a 2-replica set on a real socket."""
    backend = build_backend(artifact, HistoryStore.from_dataset(dataset),
                            replicas=REPLICAS, registry=registry)
    server = NetServer(backend, max_inflight=64, default_k=TOP_K,
                       registry=registry)
    try:
        host, port = server.start_background()
        report = run_load(host, port,
                          HistoryStore.from_dataset(dataset).users,
                          connections=NET_CONNECTIONS, target_qps=0.0,
                          total_requests=NET_REQUESTS, warmup=WARMUP,
                          k=TOP_K, seed=1)
        return report.to_dict()
    finally:
        server.stop()
        backend.close()


def _correlation_facts(events_path: Path) -> dict:
    """Collect the fleet view and distill the assertable correlation facts."""
    view = collect_fleet(events_path)
    spans = {span["span_id"]: span for span in view.spans}
    front = [s for s in view.spans if s["name"] == "net.request"]
    replica = [s for s in view.spans if s["name"] == "replica.request"]
    joined = sum(
        1 for child in replica
        if (parent := spans.get(child["parent_id"])) is not None
        and parent["name"] == "net.request"
        and parent.get("request_id") == child.get("request_id")
        and parent["trace_id"] == child["trace_id"])

    merged_exactly = True
    expected: dict[str, float] = {}
    for entry in view.processes:
        events, _ = read_events_tolerant(entry["file"])
        metric_events = [e for e in events if e.get("type") == "metrics"]
        if not metric_events:
            continue
        for name, value in (metric_events[-1]["registry"]
                            .get("counters", {}).items()):
            expected[name] = expected.get(name, 0) + value
    for name, value in expected.items():
        if view.registry.counter(name).value != value:
            merged_exactly = False

    return {
        "processes": [{"role": p["role"], "spans": p["spans"],
                       "events": p["events"]} for p in view.processes],
        "roles": sorted({p["role"] for p in view.processes}),
        "net_request_spans": len(front),
        "replica_request_spans": len(replica),
        "joined_replica_spans": joined,
        "counters_merged_exactly": merged_exactly,
        "counter_names_merged": len(expected),
        "malformed_lines": view.malformed_lines,
    }


def run_bench() -> dict:
    """Measure disabled vs fleet-enabled serving; write BENCH_P8.json."""
    artifact, dataset = _exported_artifact()

    disabled = _serve_load(artifact, dataset)

    events_path = (Path(tempfile.mkdtemp(prefix="repro-bench-p8-obs-"))
                   / "fleet.jsonl")
    with telemetry_session(events_path) as telemetry:
        enabled = _serve_load(artifact, dataset,
                              registry=telemetry.registry)
    correlation = _correlation_facts(events_path)

    regression = (enabled["p99_ms"] / disabled["p99_ms"] - 1.0
                  if disabled["p99_ms"] > 0 else 0.0)
    payload = {
        "benchmark": "P8",
        "config": {"preset": "taobao", "scale": PERF_SCALE, "dim": PERF_DIM,
                   "k": TOP_K, "requests": NET_REQUESTS,
                   "connections": NET_CONNECTIONS, "replicas": REPLICAS,
                   "max_regression": MAX_REGRESSION,
                   "cpu_count": os.cpu_count()},
        "disabled": disabled,
        "enabled": enabled,
        "p99_regression": regression,
        "correlation": correlation,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P8.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"  disabled  qps={disabled['achieved_qps']:7.1f} "
          f"p50={disabled['p50_ms']:6.2f}ms p99={disabled['p99_ms']:6.2f}ms")
    print(f"  enabled   qps={enabled['achieved_qps']:7.1f} "
          f"p50={enabled['p50_ms']:6.2f}ms p99={enabled['p99_ms']:6.2f}ms "
          f"({regression:+.1%} p99)")
    print(f"  fleet: {correlation['roles']} "
          f"net.request={correlation['net_request_spans']} "
          f"replica.request={correlation['replica_request_spans']} "
          f"joined={correlation['joined_replica_spans']}")
    print(f"  written to {out_path}")
    return payload


def _check(payload: dict) -> None:
    for run in ("disabled", "enabled"):
        row = payload[run]
        assert row["sent"] == NET_REQUESTS, run
        assert row["ok"] == NET_REQUESTS, (
            f"{run}: {row['errors']} errors / {row['shed']} sheds under an "
            "in-bounds closed loop")

    correlation = payload["correlation"]
    roles = correlation["roles"]
    assert "main" in roles, roles
    assert sum(1 for role in roles if role.startswith("replica")) == REPLICAS
    assert correlation["net_request_spans"] == NET_REQUESTS
    assert correlation["replica_request_spans"] == NET_REQUESTS
    # every replica-side span joins its front-end request's trace
    assert correlation["joined_replica_spans"] == NET_REQUESTS
    assert correlation["counters_merged_exactly"]
    assert correlation["counter_names_merged"] > 0

    cpus = payload["config"]["cpu_count"] or 1
    if MAX_REGRESSION > 0 and cpus > 1:
        assert payload["p99_regression"] < MAX_REGRESSION, (
            f"fleet telemetry regressed served p99 by "
            f"{payload['p99_regression']:.1%} "
            f"(bound {MAX_REGRESSION:.0%})")
    elif MAX_REGRESSION > 0:
        print(f"  note: p99 regression assertion waived on a {cpus}-CPU "
              "host (front-end, replicas, loadgen and event writer share "
              "one core)")


def test_p8_fleet_obs():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P8.json").exists()
    _check(payload)


if __name__ == "__main__":
    _check(run_bench())
