"""A1 — design-choice ablation: attention vs dynamic-routing interest extraction.

Both mechanisms from the multi-interest literature must be competitive on
this substrate; the benchmark asserts neither collapses.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_a1_interest_mode(benchmark):
    result = run_and_report(benchmark, "A1", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    attention = result.raw["attention"]["NDCG@10"]
    routing = result.raw["routing"]["NDCG@10"]
    # Neither extractor collapses (both clearly above the random floor of
    # NDCG@10 ≈ 0.04 under 99 negatives).
    assert attention > 0.08
    assert routing > 0.08
    # The two mechanisms land in the same performance regime (within 2x).
    assert max(attention, routing) < 2.0 * min(attention, routing)
