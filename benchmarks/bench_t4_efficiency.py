"""T4 — time-efficiency comparison (params, s/epoch, inference latency).

Reproduction target: MISSL costs more than SASRec in both training and
inference, but stays within one order of magnitude — the "manageable
overhead" claim.
"""

from common import BENCH_SCALE, metric_of, run_and_report


def test_t4_efficiency(benchmark):
    result = run_and_report(benchmark, "T4", scale=BENCH_SCALE)

    sasrec = result.raw["SASRec"]
    missl = result.raw["MISSL"]

    # MISSL is the heavier model...
    assert missl["params"] > sasrec["params"]
    assert missl["epoch_seconds"] > sasrec["epoch_seconds"]
    # ...but within ~30x on training and inference (same order of magnitude
    # on the paper's hardware; generous bound for CI noise on tiny batches).
    assert missl["epoch_seconds"] < 30 * max(sasrec["epoch_seconds"], 0.05)
    assert missl["infer_ms"] < 30 * max(sasrec["infer_ms"], 0.05)
