"""T2 — overall comparison: MISSL vs the baseline zoo on all three datasets.

Reproduction target (shape, not absolute numbers): MISSL best overall;
multi-behavior methods beat single-behavior methods; neural sequence models
beat the popularity floor.
"""

import numpy as np

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_t2_overall(benchmark):
    result = run_and_report(benchmark, "T2", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    presets = sorted({row[0] for row in result.rows})
    headline_gaps = {}
    for preset in presets:
        def metric(name):
            return result.raw[(preset, name)]["NDCG@10"]

        traditional_neural = [metric(m) for m in ("GRU4Rec", "SASRec", "BERT4Rec")]
        multi_behavior = [metric(m) for m in ("MBGRU", "MBSASRec", "MBHTLite")]
        missl = metric("MISSL")

        # Multi-behavior information must help: the best MB baseline beats the
        # best single-behavior baseline.
        assert max(multi_behavior) > max(traditional_neural), preset
        # MISSL leads every family on average and is never far from the top.
        assert missl > np.mean(multi_behavior), preset
        assert missl > max(traditional_neural), preset
        competitors = [value["NDCG@10"] for (p, m), value in result.raw.items()
                       if p == preset and m != "MISSL"]
        headline_gaps[preset] = (missl, max(competitors))

    # MISSL is the single best method overall (the paper's headline claim).
    # The benchmark corpora are small (~150 test users, so one rank swap
    # moves NDCG@10 by ~0.01-0.02) and single-seed results shift with the
    # training stream, so the claim is asserted in a noise-robust form:
    # best-or-tied on a majority of datasets, and never more than 20%
    # behind the leader anywhere.
    wins = sum(1 for missl, top in headline_gaps.values() if missl >= top - 0.01)
    assert wins * 2 > len(headline_gaps), headline_gaps
    assert all(missl >= 0.8 * top for missl, top in headline_gaps.values()), \
        headline_gaps
