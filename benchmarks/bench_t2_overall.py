"""T2 — overall comparison: MISSL vs the baseline zoo on all three datasets.

Reproduction target (shape, not absolute numbers): MISSL best overall;
multi-behavior methods beat single-behavior methods; neural sequence models
beat the popularity floor.
"""

import numpy as np

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_t2_overall(benchmark):
    result = run_and_report(benchmark, "T2", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    presets = sorted({row[0] for row in result.rows})
    for preset in presets:
        def metric(name):
            return result.raw[(preset, name)]["NDCG@10"]

        traditional_neural = [metric(m) for m in ("GRU4Rec", "SASRec", "BERT4Rec")]
        multi_behavior = [metric(m) for m in ("MBGRU", "MBSASRec", "MBHTLite")]
        missl = metric("MISSL")

        # Multi-behavior information must help: the best MB baseline beats the
        # best single-behavior baseline.
        assert max(multi_behavior) > max(traditional_neural), preset
        # MISSL leads every family on average and is never far from the top.
        assert missl > np.mean(multi_behavior), preset
        assert missl > max(traditional_neural), preset
        # MISSL is the single best method (the paper's headline claim).
        competitors = [value["NDCG@10"] for (p, m), value in result.raw.items()
                       if p == preset and m != "MISSL"]
        assert missl >= max(competitors) - 0.01, preset
