"""P1 — hot-path kernel overhaul: fast paths vs the retained seed kernels.

Times three workloads on MISSL — a full optimizer training step, the
hypergraph-enhanced item-table forward, and a complete sampled-ranking
evaluation pass — once on the fast paths (scatter-free backward, fused ops,
alias-aware gradient accumulation, float32 propagation operator) and once
under :func:`repro.perf.reference_mode`, which restores the seed
implementations end to end (including the seed's float64 propagation
operator).  Writes ``benchmarks/results/BENCH_P1.json`` and asserts the
training step is at least ``REPRO_PERF_MIN_SPEEDUP`` (default 2.0) times
faster.

Runnable both ways:
    pytest -m perf benchmarks/bench_p1_hotpaths.py
    python benchmarks/bench_p1_hotpaths.py

Environment knobs (see also benchmarks/common.py):
    REPRO_PERF_SCALE        dataset scale factor (default 0.4)
    REPRO_PERF_STEPS        timed training steps / forwards (default 5)
    REPRO_PERF_MIN_SPEEDUP  training-step speedup floor (default 2.0;
                            set 0 for smoke runs at tiny scale)
"""

from __future__ import annotations

import contextlib
import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.batching import BatchLoader
from repro.data.sampling import NegativeSampler
from repro.eval.evaluator import evaluate_ranking
from repro.eval.protocol import CandidateSets
from repro.experiments import ExperimentContext, build_model
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import no_grad
from repro.perf import reference_mode

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
PERF_STEPS = int(os.environ.get("REPRO_PERF_STEPS", "5"))
PERF_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_MIN_SPEEDUP", "2.0"))
PERF_DIM = 32
PERF_BATCH = 128

pytestmark = pytest.mark.perf


def _measure_mode(reference: bool) -> dict[str, float]:
    """Seconds per workload with the fast paths or the seed reference paths.

    The model is constructed inside the mode so construction-time choices
    (the propagation operator's dtype, segment-plan caching) match the paths
    being measured.
    """
    mode = reference_mode() if reference else contextlib.nullcontext()
    with mode:
        context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
        model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
        dataset = context.dataset
        loader = BatchLoader(context.split.train, dataset.schema, PERF_BATCH,
                             rng=np.random.default_rng(2))
        sampler = NegativeSampler(dataset, np.random.default_rng(3))
        optimizer = Adam(model.parameters(), lr=1e-3)
        batches = list(loader)

        def step(batch) -> None:
            optimizer.zero_grad()
            loss = model.training_loss(batch, sampler)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()

        # Training step (warm twice: first step pays one-time caches).
        step(batches[0])
        step(batches[1 % len(batches)])
        started = time.perf_counter()
        for index in range(PERF_STEPS):
            step(batches[index % len(batches)])
        train_step = (time.perf_counter() - started) / PERF_STEPS

        # Hypergraph forward: the enhanced item table, uncached (train mode).
        model.train()
        with no_grad():
            model.item_representations()
            started = time.perf_counter()
            for _ in range(PERF_STEPS):
                model.item_representations()
            hypergraph_forward = (time.perf_counter() - started) / PERF_STEPS

        # Full evaluation pass over the validation split (clamp negatives so
        # tiny smoke corpora stay evaluable, mirroring the Trainer).
        max_profile = max(len(dataset.items_of_user(u)) for u in dataset.users)
        num_negatives = min(99, max(1, dataset.num_items - max_profile - 1))
        candidates = CandidateSets(dataset, context.split.valid, num_negatives, seed=5)
        evaluate_ranking(model, context.split.valid, candidates, dataset.schema)
        started = time.perf_counter()
        evaluate_ranking(model, context.split.valid, candidates, dataset.schema)
        eval_pass = time.perf_counter() - started

    return {"train_step": train_step,
            "hypergraph_forward": hypergraph_forward,
            "eval_pass": eval_pass}


def run_bench() -> dict:
    """Measure both modes, print a summary, and write BENCH_P1.json."""
    fast = _measure_mode(reference=False)
    reference = _measure_mode(reference=True)
    workloads = {}
    for name in fast:
        workloads[name] = {
            "fast_seconds": fast[name],
            "reference_seconds": reference[name],
            "speedup": reference[name] / fast[name] if fast[name] > 0 else float("inf"),
        }
    payload = {
        "benchmark": "P1",
        "config": {"preset": "taobao", "scale": PERF_SCALE, "dim": PERF_DIM,
                   "batch_size": PERF_BATCH, "steps": PERF_STEPS,
                   "min_speedup": PERF_MIN_SPEEDUP},
        "workloads": workloads,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P1.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for name, numbers in workloads.items():
        print(f"  {name:20s} fast={numbers['fast_seconds']:.4f}s "
              f"reference={numbers['reference_seconds']:.4f}s "
              f"speedup={numbers['speedup']:.2f}x")
    print(f"  written to {out_path}")
    return payload


def test_p1_hotpaths():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P1.json").exists()
    train = payload["workloads"]["train_step"]
    assert train["speedup"] >= PERF_MIN_SPEEDUP, (
        f"training-step speedup {train['speedup']:.2f}x below the "
        f"{PERF_MIN_SPEEDUP:.2f}x floor")
    # The fast paths must never regress the other workloads materially.
    for name in ("hypergraph_forward", "eval_pass"):
        assert payload["workloads"][name]["speedup"] >= 0.8, name


if __name__ == "__main__":
    result = run_bench()
    speedup = result["workloads"]["train_step"]["speedup"]
    if speedup < PERF_MIN_SPEEDUP:
        raise SystemExit(f"training-step speedup {speedup:.2f}x below "
                         f"{PERF_MIN_SPEEDUP:.2f}x")
