"""F1 — sensitivity to the number of interest prototypes K.

Reproduction target: multiple interests beat a single pooled vector, and the
curve flattens or dips once K far exceeds the planted interests-per-user.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, metric_of, run_and_report


def test_f1_num_interests(benchmark):
    result = run_and_report(benchmark, "F1", scale=BENCH_SCALE, epochs=BENCH_EPOCHS,
                            ks=(1, 2, 4, 8))

    k1 = metric_of(result, "K", 1, "NDCG@10")
    best_k = max(
        (float(row[result.headers.index("NDCG@10")]), row[0]) for row in result.rows
    )[1]
    multi = max(metric_of(result, "K", k, "NDCG@10") for k in (2, 4, 8))

    # Multi-interest beats single-interest.
    assert multi > k1
    # The optimum is an intermediate K, not K=1.
    assert best_k != 1
