"""P5 — parallel input & evaluation pipeline vs the seed in-process path.

Times two workloads:

* **Input-pipeline epoch throughput** — assembling every training batch of
  an epoch *including* negative-candidate sampling, exactly what the main
  process used to do inline between optimizer steps.  The baseline is a
  replica of the seed path (per-row Python ``pad_sequences`` collate +
  per-row ``NegativeSampler.sample`` calls); the contenders are
  :class:`repro.data.pipeline.PrefetchLoader` at ``num_workers`` ∈ {0, 1, 2}
  (vectorized CSR collate + matrix negative sampling, in-process or on the
  worker pool).
* **Evaluation wall-time** — a full sampled-ranking pass, serial vs sharded
  (``rank_all(..., num_workers=2)``).

Writes ``benchmarks/results/BENCH_P5.json`` and asserts the best
workers-enabled loader beats the seed baseline by at least
``REPRO_PERF_PIPELINE_MIN_SPEEDUP`` (default 1.5).

Runnable both ways:
    pytest -m perf benchmarks/bench_p5_pipeline.py
    python benchmarks/bench_p5_pipeline.py

Environment knobs (see also benchmarks/common.py):
    REPRO_PERF_SCALE                 dataset scale factor (default 0.4)
    REPRO_PERF_PIPELINE_EPOCHS       timed epochs per loader (default 3)
    REPRO_PERF_PIPELINE_MIN_SPEEDUP  epoch-throughput floor (default 1.5;
                                     set 0 for smoke runs at tiny scale)
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.batching import Batch
from repro.data.pipeline import PrefetchLoader, epoch_order
from repro.data.sampling import NegativeSampler
from repro.eval.evaluator import precollate, rank_all
from repro.eval.protocol import CandidateSets
from repro.experiments import ExperimentContext, build_model

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
PERF_EPOCHS = int(os.environ.get("REPRO_PERF_PIPELINE_EPOCHS", "3"))
PERF_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_PIPELINE_MIN_SPEEDUP", "1.5"))
PERF_BATCH = 128
PERF_NEGATIVES = 50
PERF_DIM = 32

pytestmark = pytest.mark.perf


# ----------------------------------------------------------------------
# Seed-path replica: the exact per-row Python input path this PR replaces,
# kept here as the benchmark baseline.
# ----------------------------------------------------------------------

def _seed_pad_sequences(sequences, max_len=None, pad_value=0):
    if max_len is None:
        max_len = max((len(s) for s in sequences), default=1)
    max_len = max(max_len, 1)
    matrix = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
    mask = np.zeros((len(sequences), max_len), dtype=bool)
    for row, seq in enumerate(sequences):
        tail = list(seq)[-max_len:]
        if tail:
            matrix[row, -len(tail):] = tail
            mask[row, -len(tail):] = True
    return matrix, mask


def _seed_collate(examples, schema):
    items, masks = {}, {}
    for behavior in schema.behaviors:
        matrix, mask = _seed_pad_sequences([e.inputs[behavior] for e in examples])
        items[behavior] = matrix
        masks[behavior] = mask
    merged_items, merged_mask = _seed_pad_sequences([e.merged_items for e in examples])
    merged_behaviors, _ = _seed_pad_sequences(
        [e.merged_behavior_ids for e in examples], merged_items.shape[1])
    return Batch(
        users=np.array([e.user for e in examples], dtype=np.int64),
        items=items, masks=masks,
        merged_items=merged_items, merged_behaviors=merged_behaviors,
        merged_mask=merged_mask,
        targets=np.array([e.target for e in examples], dtype=np.int64),
    )


def _seed_epoch(examples, schema, sampler, seed, epoch):
    """One epoch of seed-style batch assembly + inline per-row sampling."""
    order = epoch_order(seed, epoch, len(examples), shuffle=True)
    count = 0
    for start in range(0, len(order), PERF_BATCH):
        chunk = order[start:start + PERF_BATCH]
        batch = _seed_collate([examples[i] for i in chunk], schema)
        rows = []
        for user, target in zip(batch.users, batch.targets):
            negatives = sampler.sample(int(user), PERF_NEGATIVES,
                                       exclude={int(target)})
            rows.append(np.concatenate([[target], negatives]))
        batch.candidates = np.stack(rows).astype(np.int64)
        count += batch.size
    return count


def _pipeline_epochs(examples, schema, dataset, num_workers) -> float:
    """Examples/second assembling PERF_EPOCHS epochs on the new pipeline."""
    loader = PrefetchLoader(examples, schema, PERF_BATCH, seed=9,
                            num_workers=num_workers, negatives=PERF_NEGATIVES,
                            dataset=dataset)
    try:
        for batch in loader:        # warm-up epoch: fork pool, prime caches
            pass
        started = time.perf_counter()
        count = 0
        for _ in range(PERF_EPOCHS):
            for batch in loader:
                count += batch.size
        return count / (time.perf_counter() - started)
    finally:
        loader.close()


def run_bench() -> dict:
    """Measure all loader configurations, print a summary, write the JSON."""
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    dataset = context.dataset
    examples = context.split.train

    # Seed baseline throughput (same per-(epoch, batch) schedule).
    sampler = NegativeSampler(dataset, np.random.default_rng(3))
    _seed_epoch(examples, dataset.schema, sampler, seed=9, epoch=0)
    started = time.perf_counter()
    count = sum(_seed_epoch(examples, dataset.schema, sampler, seed=9, epoch=e)
                for e in range(PERF_EPOCHS))
    seed_throughput = count / (time.perf_counter() - started)

    loaders = {f"prefetch_nw{nw}": _pipeline_epochs(examples, dataset.schema,
                                                    dataset, nw)
               for nw in (0, 1, 2)}

    # Evaluation wall-time: serial vs sharded ranking over the same batches.
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    model.eval()
    max_profile = max(len(dataset.items_of_user(u)) for u in dataset.users)
    num_negatives = min(99, max(1, dataset.num_items - max_profile - 1))
    candidates = CandidateSets(dataset, context.split.valid, num_negatives, seed=5)
    batches = precollate(context.split.valid, candidates, dataset.schema)
    rank_all(model, context.split.valid, candidates, dataset.schema,
             precollated=batches)                       # warm caches
    started = time.perf_counter()
    serial_ranks = rank_all(model, context.split.valid, candidates,
                            dataset.schema, precollated=batches)
    eval_serial = time.perf_counter() - started
    started = time.perf_counter()
    sharded_ranks = rank_all(model, context.split.valid, candidates,
                             dataset.schema, precollated=batches, num_workers=2)
    eval_sharded = time.perf_counter() - started
    assert np.array_equal(serial_ranks, sharded_ranks), \
        "sharded rank_all diverged from the serial ranks"

    workers_best = max(loaders["prefetch_nw1"], loaders["prefetch_nw2"])
    payload = {
        "benchmark": "P5",
        "config": {"preset": "taobao", "scale": PERF_SCALE,
                   "batch_size": PERF_BATCH, "negatives": PERF_NEGATIVES,
                   "epochs": PERF_EPOCHS, "min_speedup": PERF_MIN_SPEEDUP},
        "input_pipeline": {
            "seed_examples_per_second": seed_throughput,
            **{name: value for name, value in loaders.items()},
            "speedup_inprocess": loaders["prefetch_nw0"] / seed_throughput,
            "speedup_workers": workers_best / seed_throughput,
        },
        "evaluation": {
            "serial_seconds": eval_serial,
            "sharded_nw2_seconds": eval_sharded,
            "speedup": eval_serial / eval_sharded if eval_sharded > 0 else float("inf"),
            "ranks_identical": True,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P5.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"  seed loader          {seed_throughput:10.0f} examples/s")
    for name, value in loaders.items():
        print(f"  {name:20s} {value:10.0f} examples/s "
              f"({value / seed_throughput:.2f}x)")
    print(f"  eval serial={eval_serial:.3f}s sharded={eval_sharded:.3f}s "
          f"({payload['evaluation']['speedup']:.2f}x), ranks identical")
    print(f"  written to {out_path}")
    return payload


def test_p5_pipeline():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P5.json").exists()
    speedup = payload["input_pipeline"]["speedup_workers"]
    assert speedup >= PERF_MIN_SPEEDUP, (
        f"workers-enabled epoch throughput {speedup:.2f}x below the "
        f"{PERF_MIN_SPEEDUP:.2f}x floor")
    assert payload["evaluation"]["ranks_identical"]


if __name__ == "__main__":
    result = run_bench()
    speedup = result["input_pipeline"]["speedup_workers"]
    if speedup < PERF_MIN_SPEEDUP:
        raise SystemExit(f"workers-enabled pipeline speedup {speedup:.2f}x "
                         f"below {PERF_MIN_SPEEDUP:.2f}x")
