"""A2 — design-choice ablation: hypergraph construction knobs.

Asserts the construction defaults are sound: windowed edges are competitive
with whole-sequence edges, and every variant stays in a sane range.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_a2_hypergraph_construction(benchmark):
    result = run_and_report(benchmark, "A2", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    column = result.headers.index("NDCG@10")
    values = {row[0]: float(row[column]) for row in result.rows}
    # All construction variants train to a sane range.
    assert min(values.values()) > 0.08
    # The default (window=10, cross edges on) is within noise of the best.
    default = values["window=10"]
    assert default >= max(values.values()) - 0.05
