"""A3 — non-sequential reference models (outside the paper's baseline table).

Asserts MISSL beats the classic non-sequential references; LightGCN is
reported without an assertion (see the runner's docstring for why pure CF is
unusually strong on stationary synthetic interests).
"""

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_a3_nonsequential(benchmark):
    result = run_and_report(benchmark, "A3", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    missl = result.raw["MISSL"]["NDCG@10"]
    assert missl > result.raw["POP"]["NDCG@10"]
    assert missl > result.raw["ItemKNN"]["NDCG@10"]
    assert missl > result.raw["BPRMF"]["NDCG@10"]
    # LightGCN: reported, not asserted (documented simulator limitation).
    assert result.raw["LightGCN"]["NDCG@10"] > 0.0
