"""P7 — network serving: recall-vs-latency Pareto and replica scaling.

Drives a real :class:`~repro.serve.net.NetServer` with the closed-loop load
generator and answers two questions with numbers:

1. **Index Pareto** — for each retrieval variant (exact, IVF at two probe
   widths, HNSW at three ``ef_search`` settings) the benchmark measures
   recall@k against the exact index *and* served p50/p99 latency through a
   real TCP socket.  The interesting claim: some HNSW operating point
   dominates the default IVF configuration — equal-or-better recall while
   scoring fewer candidates.
2. **Replica scaling** — the same load against a
   :class:`~repro.serve.net.ReplicaSet` of 1, 2 and 3 forked replicas,
   reporting achieved QPS and tail latency per replica count.

Writes ``benchmarks/results/BENCH_P7.json``.

Runnable both ways:
    pytest -m perf benchmarks/bench_p7_net.py
    python benchmarks/bench_p7_net.py

Environment knobs:
    REPRO_PERF_SCALE             dataset scale factor (default 0.4)
    REPRO_PERF_NET_REQUESTS      load-gen requests per variant (default 240)
    REPRO_PERF_NET_CONNECTIONS   persistent client connections (default 4)
    REPRO_PERF_NET_MIN_RECALL    recall floor for the dominant HNSW point
                                 (default 0.9; set 0 to skip the Pareto
                                 assertion at degenerate scales)
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.batching import collate
from repro.experiments import ExperimentContext, build_model
from repro.serve import (ExactIndex, HistoryStore, NetServer, build_backend,
                         build_encoder, build_index, export_artifact,
                         load_artifact, run_load, topk_overlap)

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
NET_REQUESTS = int(os.environ.get("REPRO_PERF_NET_REQUESTS", "240"))
NET_CONNECTIONS = int(os.environ.get("REPRO_PERF_NET_CONNECTIONS", "4"))
NET_MIN_RECALL = float(os.environ.get("REPRO_PERF_NET_MIN_RECALL", "0.9"))
PERF_DIM = 32
TOP_K = 10
WARMUP = 24

pytestmark = pytest.mark.perf


def _exported_artifact():
    """A frozen artifact plus its corpus (untrained weights — the request
    path and index structure do not depend on training)."""
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    path = Path(tempfile.mkdtemp(prefix="repro-bench-p7-")) / "artifact.npz"
    export_artifact(model, path)
    return load_artifact(path), context.dataset


def _index_variants(num_items: int) -> list[tuple[str, str, dict]]:
    nlist = max(1, int(round(np.sqrt(num_items))))
    return [
        ("exact", "exact", {}),
        ("ivf_default", "ivf", {"nlist": nlist, "seed": 1}),
        ("ivf_wide", "ivf",
         {"nlist": nlist, "nprobe": max(1, nlist // 2), "seed": 1}),
        ("hnsw_ef16", "hnsw", {"ef_search": 16, "seed": 1}),
        ("hnsw_ef48", "hnsw", {"ef_search": 48, "seed": 1}),
        ("hnsw_ef128", "hnsw", {"ef_search": 128, "seed": 1}),
    ]


def _measure_recall(artifact, history, backend: str, options: dict) -> dict:
    """Mean recall@k vs exact (and candidates scored) over every user."""
    encoder = build_encoder(artifact)
    users = history.users
    batch = collate([history.example(user) for user in users], history.schema)
    interests = encoder.interests(batch)
    vectors = artifact.item_vectors()
    exact = ExactIndex(vectors, score_mode=encoder.score_mode,
                       score_pow=encoder.score_pow)
    index = build_index(vectors, backend, score_mode=encoder.score_mode,
                        score_pow=encoder.score_pow, **options)
    recalls, scored = [], []
    for row, user in enumerate(users):
        exclude = history.seen(user)
        reference = exact.search(interests[row], TOP_K, exclude=exclude)
        approx = index.search(interests[row], TOP_K, exclude=exclude)
        recalls.append(topk_overlap(approx.items, reference.items))
        scored.append(approx.candidates_scored)
    return {
        "recall_at_k": float(np.mean(recalls)),
        "mean_candidates_scored": float(np.mean(scored)),
        "catalog_size": len(vectors),
    }


def _serve_load(artifact, dataset, *, replicas: int,
                service_options: dict) -> dict:
    """Served QPS and latency through a real socket for one configuration."""
    backend = build_backend(artifact, HistoryStore.from_dataset(dataset),
                            replicas=replicas,
                            service_options=service_options)
    server = NetServer(backend, max_inflight=64, default_k=TOP_K)
    try:
        host, port = server.start_background()
        report = run_load(host, port, HistoryStore.from_dataset(dataset).users,
                          connections=NET_CONNECTIONS, target_qps=0.0,
                          total_requests=NET_REQUESTS, warmup=WARMUP,
                          k=TOP_K, seed=1)
        return report.to_dict()
    finally:
        server.stop()
        backend.close()


def run_bench() -> dict:
    """Measure the index Pareto and replica scaling; write BENCH_P7.json."""
    artifact, dataset = _exported_artifact()
    history = HistoryStore.from_dataset(dataset)
    pareto = {}
    for name, backend, options in _index_variants(artifact.num_items):
        quality = (_measure_recall(artifact, history, backend, options)
                   if backend != "exact" else
                   {"recall_at_k": 1.0,
                    "mean_candidates_scored": float(artifact.num_items),
                    "catalog_size": artifact.num_items})
        served = _serve_load(artifact, dataset, replicas=0,
                             service_options={"index_backend": backend,
                                              "index_options": options})
        pareto[name] = {"index_backend": backend, "options": options,
                        **quality, **served}
    scaling = []
    for replicas in (1, 2, 3):
        started = time.perf_counter()
        served = _serve_load(
            artifact, dataset, replicas=replicas,
            service_options={"index_backend": "hnsw",
                             "index_options": {"ef_search": 48, "seed": 1}})
        scaling.append({"replicas": replicas,
                        "wall_seconds": time.perf_counter() - started,
                        **served})
    payload = {
        "benchmark": "P7",
        "config": {"preset": "taobao", "scale": PERF_SCALE, "dim": PERF_DIM,
                   "k": TOP_K, "requests": NET_REQUESTS,
                   "connections": NET_CONNECTIONS,
                   "min_recall": NET_MIN_RECALL},
        "pareto": pareto,
        "replica_scaling": scaling,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P7.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for name, row in pareto.items():
        print(f"  {name:12s} recall@{TOP_K}={row['recall_at_k']:.3f} "
              f"candidates={row['mean_candidates_scored']:6.0f}"
              f"/{row['catalog_size']}  qps={row['achieved_qps']:7.1f} "
              f"p50={row['p50_ms']:6.2f}ms p99={row['p99_ms']:6.2f}ms")
    for row in scaling:
        print(f"  replicas={row['replicas']}  qps={row['achieved_qps']:7.1f} "
              f"p50={row['p50_ms']:6.2f}ms p99={row['p99_ms']:6.2f}ms")
    print(f"  written to {out_path}")
    return payload


def _check(payload: dict) -> None:
    pareto = payload["pareto"]
    for name, row in pareto.items():
        assert row["sent"] == NET_REQUESTS, name
        assert row["ok"] == NET_REQUESTS, (
            f"{name}: {row['errors']} errors / {row['shed']} sheds under "
            "an in-bounds closed loop")
    assert pareto["exact"]["recall_at_k"] == 1.0
    for name in ("ivf_default", "hnsw_ef16", "hnsw_ef48", "hnsw_ef128"):
        assert pareto[name]["mean_candidates_scored"] < \
            pareto[name]["catalog_size"], f"{name} should prune candidates"
    if NET_MIN_RECALL > 0:
        ivf = pareto["ivf_default"]
        dominant = [
            name for name in ("hnsw_ef16", "hnsw_ef48", "hnsw_ef128")
            if pareto[name]["recall_at_k"] >= max(NET_MIN_RECALL,
                                                  ivf["recall_at_k"])
            and pareto[name]["mean_candidates_scored"] <=
            ivf["mean_candidates_scored"]
        ]
        assert dominant, (
            "no HNSW point dominates ivf_default: "
            + ", ".join(f"{name}: recall={pareto[name]['recall_at_k']:.3f} "
                        f"cand={pareto[name]['mean_candidates_scored']:.0f}"
                        for name in pareto))
    for row in payload["replica_scaling"]:
        assert row["sent"] == NET_REQUESTS
        assert row["ok"] + row["shed"] + row["errors"] == NET_REQUESTS
        assert row["errors"] == 0, f"replicas={row['replicas']} saw errors"


def test_p7_net():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P7.json").exists()
    _check(payload)


if __name__ == "__main__":
    _check(run_bench())
