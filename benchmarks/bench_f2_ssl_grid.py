"""F2 — SSL weight λ and temperature τ grid (heat-map data).

Reproduction target: some non-zero λ setting beats λ=0, i.e. the
cross-behavior contrast carries signal; extreme settings do not win.
"""

import numpy as np

from common import BENCH_SCALE, run_and_report


def test_f2_ssl_grid(benchmark):
    result = run_and_report(benchmark, "F2", scale=BENCH_SCALE, epochs=12,
                            lambdas=(0.0, 0.1, 0.3), temperatures=(0.1, 0.3, 0.7))

    ndcg = {(row[0], row[1]): float(row[result.headers.index("NDCG@10")])
            for row in result.rows}
    baseline = max(value for (lam, tau), value in ndcg.items() if lam == 0.0)
    with_ssl = max(value for (lam, tau), value in ndcg.items() if lam > 0.0)

    # Some SSL setting matches or beats no-SSL.
    assert with_ssl >= baseline - 0.005
    # The grid is not flat: settings matter.
    values = np.array(list(ndcg.values()))
    assert values.std() > 0.0
