"""F6 — interest-space analysis (the t-SNE visualization's quantitative proxy).

Reproduction target: the disentanglement penalty lowers the mean cosine
between a user's interest slots, and the hypergraph-enhanced item table
separates the planted interest clusters at least as well as the raw table.
"""

from common import BENCH_SCALE, run_and_report


def test_f6_interest_space(benchmark):
    result = run_and_report(benchmark, "F6", scale=BENCH_SCALE, epochs=12)

    with_disent = result.raw[("proto_cosine", "with disent")]
    without = result.raw[("proto_cosine", "w/o disent")]
    # Disentanglement separates the interest prototypes.
    assert with_disent < without

    # Hypergraph message passing improves the planted-cluster geometry of the
    # item table relative to the raw embedding table.
    assert result.raw["separation_enhanced"] > result.raw["separation_raw"]
