"""F3 — hypergraph transformer depth and embedding dim sensitivity.

Reproduction target: message passing helps (depth ≥ 1 beats depth 0);
capacity saturates with dimension on small corpora.
"""

from common import BENCH_SCALE, metric_of, run_and_report


def test_f3_depth_dim(benchmark):
    result = run_and_report(benchmark, "F3", scale=BENCH_SCALE, epochs=12,
                            depths=(0, 1, 2), dims=(16, 32))

    depth0 = metric_of(result, "value", 0, "NDCG@10")
    depth_best = max(metric_of(result, "value", d, "NDCG@10") for d in (1, 2))
    # Hypergraph message passing improves over no message passing.
    assert depth_best > depth0

    dim16 = [float(r[result.headers.index("NDCG@10")]) for r in result.rows
             if r[0] == "dim" and r[1] == 16][0]
    dim32 = [float(r[result.headers.index("NDCG@10")]) for r in result.rows
             if r[0] == "dim" and r[1] == 32][0]
    # Both capacities must be in a sane range (trained at all).
    assert min(dim16, dim32) > 0.05
