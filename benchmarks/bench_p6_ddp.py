"""P6 — data-parallel training and the zero-copy shared-memory transport.

Times three workloads against the PR 5 state of the tree:

* **Training epoch wall-clock** — ``Trainer.fit`` with ``data_parallel``
  at ``num_workers`` ∈ {0, 1, 2, 4} (fixed ``grad_shards``, so every run is
  bitwise-comparable) next to the legacy single-process loader path.  The
  bench asserts the worker runs reproduce the in-process reference's final
  parameters exactly — the determinism contract — and, on multi-CPU hosts,
  that the best worker count beats the in-process shard loop by
  ``REPRO_PERF_DDP_MIN_SPEEDUP``.
* **Evaluation wall-clock** — serial ``rank_all`` vs the persistent
  :class:`repro.eval.EvalShardPool` (the fork-once pool this PR adds after
  BENCH_P5 measured the per-call sharded path at 0.81× serial).  Floor:
  ``REPRO_PERF_EVAL_MIN_SPEEDUP`` (default 1.0 — sharded eval must at least
  tie serial now).
* **Queue transport traffic** — bytes of batch payload that cross the
  worker queue pickled, before (everything) vs after (shm descriptors, only
  sub-threshold leftovers pickle).  This assertion is hardware-independent
  and always enforced: the reduction must be at least
  ``REPRO_PERF_SHM_MIN_REDUCTION`` (default 10×).

Speed floors are **waived with a recorded reason** when the host exposes
fewer than 2 CPUs — parallel wall-clock wins are physically impossible
there, but determinism and transport-traffic assertions still run.

Writes ``benchmarks/results/BENCH_P6.json``.

Runnable both ways:
    pytest -m perf benchmarks/bench_p6_ddp.py
    python benchmarks/bench_p6_ddp.py

Environment knobs (see also benchmarks/common.py):
    REPRO_PERF_SCALE              dataset scale factor (default 0.4)
    REPRO_PERF_DDP_EPOCHS         training epochs per configuration (default 2)
    REPRO_PERF_DDP_MIN_SPEEDUP    best-workers vs in-process floor (default 1.0)
    REPRO_PERF_EVAL_MIN_SPEEDUP   persistent sharded eval floor (default 1.0)
    REPRO_PERF_SHM_MIN_REDUCTION  pickled-bytes reduction floor (default 10)
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from common import RESULTS_DIR

from repro.data.pipeline import PrefetchLoader
from repro.eval.evaluator import EvalShardPool, precollate, rank_all
from repro.eval.protocol import CandidateSets
from repro.experiments import ExperimentContext, build_model
from repro.train import TrainConfig, Trainer

PERF_SCALE = float(os.environ.get("REPRO_PERF_SCALE", "0.4"))
PERF_EPOCHS = int(os.environ.get("REPRO_PERF_DDP_EPOCHS", "2"))
PERF_DDP_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_DDP_MIN_SPEEDUP", "1.0"))
PERF_EVAL_MIN_SPEEDUP = float(os.environ.get("REPRO_PERF_EVAL_MIN_SPEEDUP", "1.0"))
PERF_SHM_MIN_REDUCTION = float(os.environ.get("REPRO_PERF_SHM_MIN_REDUCTION", "10"))
PERF_BATCH = 128
PERF_NEGATIVES = 50
PERF_DIM = 32
PERF_GRAD_SHARDS = 4

pytestmark = pytest.mark.perf


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _fit(context, num_workers: int, data_parallel: bool):
    """Train one fresh model; returns (state_dict, train_s, eval_s, losses)."""
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    config = TrainConfig(epochs=PERF_EPOCHS, patience=PERF_EPOCHS,
                         batch_size=PERF_BATCH, seed=9,
                         num_eval_negatives=30, num_workers=num_workers,
                         data_parallel=data_parallel,
                         grad_shards=PERF_GRAD_SHARDS)
    history = Trainer(model, context.split, config).fit()
    return (model.state_dict(),
            sum(r.train_seconds for r in history.records),
            sum(r.eval_seconds for r in history.records),
            [r.train_loss for r in history.records])


def _batch_payload_bytes(batch) -> int:
    total = batch.users.nbytes + batch.targets.nbytes
    for behavior in batch.items:
        total += batch.items[behavior].nbytes + batch.masks[behavior].nbytes
    total += (batch.merged_items.nbytes + batch.merged_behaviors.nbytes
              + batch.merged_mask.nbytes)
    if batch.candidates is not None:
        total += batch.candidates.nbytes
    return total


def _transport_traffic(context) -> dict:
    """One worker epoch: payload bytes vs bytes that still crossed pickled."""
    loader = PrefetchLoader(context.split.train, context.dataset.schema,
                            PERF_BATCH, seed=9, num_workers=1,
                            negatives=PERF_NEGATIVES, dataset=context.dataset,
                            use_shm=True)
    try:
        payload_bytes = sum(_batch_payload_bytes(batch) for batch in loader)
        pool = loader._pool
        shm_bytes = pool.shm_bytes
        shm_results = pool.shm_results
        raw_results = pool.raw_results
    finally:
        loader.close()
    pickled_after = max(payload_bytes - shm_bytes, 0)
    return {
        "payload_bytes_per_epoch": payload_bytes,   # == pickled before this PR
        "shm_bytes_per_epoch": shm_bytes,
        "pickled_bytes_per_epoch": pickled_after,
        "shm_batches": shm_results,
        "pickle_fallback_batches": raw_results,
        "reduction": (payload_bytes / pickled_after if pickled_after
                      else float("inf")),
    }


def run_bench() -> dict:
    context = ExperimentContext.build("taobao", scale=PERF_SCALE, seed=1)
    cpus = _available_cpus()
    floors_waived = (None if cpus >= 2 else
                     f"host exposes {cpus} CPU(s); parallel wall-clock "
                     "speedups are unattainable, so only determinism and "
                     "transport assertions are enforced")

    # -- training: legacy loader path + DDP at each worker count ---------
    legacy_state, legacy_train, legacy_eval, legacy_losses = _fit(
        context, num_workers=0, data_parallel=False)
    runs = {}
    reference_state = None
    reference_losses = None
    bitwise_identical = True
    for num_workers in (0, 1, 2, 4):
        state, train_s, eval_s, losses = _fit(context, num_workers=num_workers,
                                              data_parallel=True)
        runs[f"ddp_nw{num_workers}"] = {"train_seconds": train_s,
                                        "eval_seconds": eval_s}
        if num_workers == 0:
            reference_state, reference_losses = state, losses
        else:
            assert losses == reference_losses, \
                f"ddp nw={num_workers} losses diverged from the reference"
            for name in reference_state:
                if not np.array_equal(state[name], reference_state[name]):
                    bitwise_identical = False
    assert bitwise_identical, \
        "data-parallel fit is not bitwise worker-count-independent"

    ddp_serial = runs["ddp_nw0"]["train_seconds"]
    ddp_best = min(runs[f"ddp_nw{nw}"]["train_seconds"] for nw in (1, 2, 4))
    ddp_speedup = ddp_serial / ddp_best if ddp_best > 0 else float("inf")

    # -- evaluation: serial vs the persistent shard pool -----------------
    model = build_model("MISSL", context, dim=PERF_DIM, seed=1)
    model.eval()
    dataset = context.dataset
    max_profile = max(len(dataset.items_of_user(u)) for u in dataset.users)
    num_negatives = min(99, max(1, dataset.num_items - max_profile - 1))
    candidates = CandidateSets(dataset, context.split.valid, num_negatives, seed=5)
    batches = precollate(context.split.valid, candidates, dataset.schema)
    rank_all(model, context.split.valid, candidates, dataset.schema,
             precollated=batches)                       # warm caches
    started = time.perf_counter()
    serial_ranks = rank_all(model, context.split.valid, candidates,
                            dataset.schema, precollated=batches)
    eval_serial = time.perf_counter() - started
    with EvalShardPool(model, batches, num_workers=min(2, max(cpus, 1))) as pool:
        pool.rank_all()                                 # warm the fork pool
        started = time.perf_counter()
        sharded_ranks = pool.rank_all()
        eval_sharded = time.perf_counter() - started
    assert np.array_equal(serial_ranks, sharded_ranks), \
        "persistent shard pool diverged from the serial ranks"
    eval_speedup = eval_serial / eval_sharded if eval_sharded > 0 else float("inf")

    # -- transport traffic ----------------------------------------------
    traffic = _transport_traffic(context)

    payload = {
        "benchmark": "P6",
        "config": {"preset": "taobao", "scale": PERF_SCALE,
                   "batch_size": PERF_BATCH, "epochs": PERF_EPOCHS,
                   "grad_shards": PERF_GRAD_SHARDS, "cpus": cpus,
                   "ddp_min_speedup": PERF_DDP_MIN_SPEEDUP,
                   "eval_min_speedup": PERF_EVAL_MIN_SPEEDUP,
                   "shm_min_reduction": PERF_SHM_MIN_REDUCTION},
        "floors_waived": floors_waived,
        "training": {
            "legacy": {"train_seconds": legacy_train,
                       "eval_seconds": legacy_eval},
            **runs,
            "ddp_best_workers_speedup": ddp_speedup,
            "bitwise_identical": bitwise_identical,
        },
        "evaluation": {
            "serial_seconds": eval_serial,
            "shard_pool_seconds": eval_sharded,
            "speedup": eval_speedup,
            "ranks_identical": True,
        },
        "transport": traffic,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_P6.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"  legacy loader fit    train={legacy_train:7.2f}s "
          f"eval={legacy_eval:6.2f}s")
    for name, timing in runs.items():
        print(f"  {name:20s} train={timing['train_seconds']:7.2f}s "
              f"eval={timing['eval_seconds']:6.2f}s")
    print(f"  ddp best-workers speedup {ddp_speedup:.2f}x "
          f"(bitwise identical: {bitwise_identical})")
    print(f"  eval serial={eval_serial:.3f}s shard-pool={eval_sharded:.3f}s "
          f"({eval_speedup:.2f}x), ranks identical")
    print(f"  transport: {traffic['payload_bytes_per_epoch']:,} B payload, "
          f"{traffic['pickled_bytes_per_epoch']:,} B still pickled "
          f"({traffic['reduction']:.0f}x reduction)")
    if floors_waived:
        print(f"  speed floors waived: {floors_waived}")
    print(f"  written to {out_path}")
    return payload


def _check_floors(payload: dict) -> list[str]:
    """Floor violations (empty = pass); speed floors CPU-gated, traffic not."""
    failures = []
    reduction = payload["transport"]["reduction"]
    if reduction < PERF_SHM_MIN_REDUCTION:
        failures.append(f"pickled-bytes reduction {reduction:.1f}x below the "
                        f"{PERF_SHM_MIN_REDUCTION:.0f}x floor")
    if payload["floors_waived"]:
        return failures
    ddp = payload["training"]["ddp_best_workers_speedup"]
    if ddp < PERF_DDP_MIN_SPEEDUP:
        failures.append(f"ddp best-workers speedup {ddp:.2f}x below the "
                        f"{PERF_DDP_MIN_SPEEDUP:.2f}x floor")
    evaluation = payload["evaluation"]["speedup"]
    if evaluation < PERF_EVAL_MIN_SPEEDUP:
        failures.append(f"persistent sharded eval {evaluation:.2f}x below the "
                        f"{PERF_EVAL_MIN_SPEEDUP:.2f}x floor")
    return failures


def test_p6_ddp():
    payload = run_bench()
    assert (RESULTS_DIR / "BENCH_P6.json").exists()
    assert payload["training"]["bitwise_identical"]
    assert payload["evaluation"]["ranks_identical"]
    failures = _check_floors(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    result = run_bench()
    problems = _check_floors(result)
    if problems:
        raise SystemExit("; ".join(problems))
