"""Shared plumbing for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the
reconstruction (see DESIGN.md §4): it runs the corresponding experiment once
under ``pytest-benchmark`` (rounds=1 — these are minutes-long end-to-end
experiments, not micro-benchmarks), prints the regenerated table, saves
CSV/markdown into ``benchmarks/results/``, and asserts the robust qualitative
claims the paper's narrative depends on.

Environment knobs (for quick smoke runs):
    REPRO_BENCH_SCALE   dataset scale factor (default 0.5)
    REPRO_BENCH_EPOCHS  training epochs (default 15)

The perf benchmark ``bench_p1_hotpaths.py`` (marker ``perf``; excluded from
tier-1 runs) has its own knobs so it can smoke-test independently of the
experiment benches:
    REPRO_PERF_SCALE        dataset scale factor (default 0.4)
    REPRO_PERF_STEPS        timed training steps per mode (default 5)
    REPRO_PERF_MIN_SPEEDUP  fail below this training-step speedup
                            (default 2.0; ``run_perf_smoke.sh`` sets 0
                            because tiny corpora are overhead-dominated)
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import run_experiment
from repro.experiments.results import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "15"))


def run_and_report(benchmark, experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment under the benchmark fixture and persist its output."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    result.save(RESULTS_DIR)
    print()
    print(result.render())
    return result


def metric_of(result: ExperimentResult, key_column: str, key, metric: str) -> float:
    """Look up one metric cell by row key."""
    key_index = result.headers.index(key_column)
    metric_index = result.headers.index(metric)
    for row in result.rows:
        if row[key_index] == key:
            return float(row[metric_index])
    raise KeyError(f"row {key!r} not found in {result.experiment_id}")
