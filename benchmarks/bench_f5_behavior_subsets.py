"""F5 — contribution of each auxiliary behavior.

Reproduction target: adding auxiliary behaviors improves over target-only;
the full behavior set is at or near the top.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_f5_behavior_subsets(benchmark):
    result = run_and_report(benchmark, "F5", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    column = result.headers.index("NDCG@10")
    values = [float(row[column]) for row in result.rows]
    target_only = values[0]
    full = values[-1]

    # Auxiliary behaviors help: full set beats target-only clearly.
    assert full > target_only
    # The best subset includes at least one auxiliary behavior.
    assert max(values) > target_only
