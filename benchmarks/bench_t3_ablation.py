"""T3 — ablation study: every MISSL component earns its keep.

Reproduction target: the full model is best (within noise); removing the
auxiliary behaviors hurts the most.
"""

from common import BENCH_EPOCHS, BENCH_SCALE, metric_of, run_and_report


def test_t3_ablation(benchmark):
    result = run_and_report(benchmark, "T3", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    full = metric_of(result, "variant", "full", "NDCG@10")
    no_aux = metric_of(result, "variant", "w/o auxiliary", "NDCG@10")
    variants = {row[0]: float(row[result.headers.index("NDCG@10")])
                for row in result.rows}

    # Removing the auxiliary behaviors is the most damaging ablation.
    assert no_aux == min(variants.values())
    assert full > no_aux
    # The full model is at or near the top of the variant set (small synthetic
    # corpora leave individual regularizers within noise of the full model).
    assert full >= max(variants.values()) - 0.02
