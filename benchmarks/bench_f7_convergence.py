"""F7 — convergence analysis: validation NDCG@10 per epoch, several models.

Reproduction target: every model's training loss decreases, and MISSL's
validation curve ends above the baselines'.
"""

import numpy as np

from common import BENCH_SCALE, run_and_report


def test_f7_convergence(benchmark):
    result = run_and_report(benchmark, "F7", scale=BENCH_SCALE, epochs=10)

    for name, series in result.raw.items():
        losses = series["losses"]
        # Loss at the end is below the start for every model.
        assert losses[-1] < losses[0], name
        assert np.isfinite(series["curve"]).all(), name

    final = {name: series["curve"][-1] for name, series in result.raw.items()}
    assert final["MISSL"] >= max(v for k, v in final.items() if k != "MISSL") - 0.02
