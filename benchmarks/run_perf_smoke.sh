#!/usr/bin/env bash
# Smoke-run the perf benchmarks (P1 hot paths, P2 serving) at tiny scale.
#
# Verifies the benchmark machinery end to end — all code paths execute and
# BENCH_P1.json / BENCH_P2.json are produced — without asserting the
# speedup floors, which are only meaningful at the default scale (tiny
# corpora are dominated by fixed overheads).  Intended for CI; finishes in
# well under a minute.
set -euo pipefail

cd "$(dirname "$0")/.."

export REPRO_PERF_SCALE="${REPRO_PERF_SCALE:-0.15}"
export REPRO_PERF_STEPS="${REPRO_PERF_STEPS:-2}"
export REPRO_PERF_MIN_SPEEDUP="${REPRO_PERF_MIN_SPEEDUP:-0}"
export REPRO_PERF_SERVE_REQUESTS="${REPRO_PERF_SERVE_REQUESTS:-48}"
export REPRO_PERF_SERVE_CLIENTS="${REPRO_PERF_SERVE_CLIENTS:-8}"
export REPRO_PERF_SERVE_MIN_SPEEDUP="${REPRO_PERF_SERVE_MIN_SPEEDUP:-0}"

rm -f benchmarks/results/BENCH_P1.json benchmarks/results/BENCH_P2.json

PYTHONPATH=src python benchmarks/bench_p1_hotpaths.py
PYTHONPATH=src python benchmarks/bench_p2_serving.py

for result in BENCH_P1.json BENCH_P2.json; do
    if [[ ! -f "benchmarks/results/$result" ]]; then
        echo "FAIL: benchmarks/results/$result was not produced" >&2
        exit 1
    fi
done
echo "perf smoke OK"
