#!/usr/bin/env bash
# Smoke-run the perf benchmarks (P1 hot paths, P2 serving, P5 input
# pipeline, P6 data-parallel training, P7 network serving, P8 fleet
# observability, P10 quantized retrieval) at tiny scale.
#
# Verifies the benchmark machinery end to end — all code paths execute and
# BENCH_P1.json / BENCH_P2.json / BENCH_P5.json / BENCH_P6.json /
# BENCH_P7.json / BENCH_P8.json / BENCH_P10.json are
# produced — without asserting the speedup floors, which are only meaningful at the default
# scale (tiny corpora are dominated by fixed overheads).  The P10
# quantized-parity gates stay ON even here: the memory-reduction and
# recall floors and the mmap'd-bundle RSS advantage are scale-robust
# correctness claims, not timing claims.  Intended for CI; finishes in
# well under a minute.
set -euo pipefail

cd "$(dirname "$0")/.."

export REPRO_PERF_SCALE="${REPRO_PERF_SCALE:-0.15}"
export REPRO_PERF_STEPS="${REPRO_PERF_STEPS:-2}"
export REPRO_PERF_MIN_SPEEDUP="${REPRO_PERF_MIN_SPEEDUP:-0}"
export REPRO_PERF_SERVE_REQUESTS="${REPRO_PERF_SERVE_REQUESTS:-48}"
export REPRO_PERF_SERVE_CLIENTS="${REPRO_PERF_SERVE_CLIENTS:-8}"
export REPRO_PERF_SERVE_MIN_SPEEDUP="${REPRO_PERF_SERVE_MIN_SPEEDUP:-0}"
export REPRO_PERF_PIPELINE_EPOCHS="${REPRO_PERF_PIPELINE_EPOCHS:-1}"
export REPRO_PERF_PIPELINE_MIN_SPEEDUP="${REPRO_PERF_PIPELINE_MIN_SPEEDUP:-0}"
export REPRO_PERF_DDP_EPOCHS="${REPRO_PERF_DDP_EPOCHS:-1}"
export REPRO_PERF_DDP_MIN_SPEEDUP="${REPRO_PERF_DDP_MIN_SPEEDUP:-0}"
export REPRO_PERF_EVAL_MIN_SPEEDUP="${REPRO_PERF_EVAL_MIN_SPEEDUP:-0}"
export REPRO_PERF_NET_REQUESTS="${REPRO_PERF_NET_REQUESTS:-120}"
export REPRO_PERF_NET_CONNECTIONS="${REPRO_PERF_NET_CONNECTIONS:-4}"
export REPRO_PERF_OBS_MAX_REGRESSION="${REPRO_PERF_OBS_MAX_REGRESSION:-0}"
# Quantized retrieval: keep the parity gates (reduction + recall + RSS) on,
# disable only the timing floors; shrink the synthetic catalog and the RSS
# probe so the smoke stays fast.
export REPRO_PERF_QUANT_MIN_SPAWN_SPEEDUP="${REPRO_PERF_QUANT_MIN_SPAWN_SPEEDUP:-0}"
export REPRO_PERF_QUANT_P99_SLACK="${REPRO_PERF_QUANT_P99_SLACK:-0}"
export REPRO_PERF_QUANT_CATALOG="${REPRO_PERF_QUANT_CATALOG:-2000}"
export REPRO_PERF_QUANT_RSS_MB="${REPRO_PERF_QUANT_RSS_MB:-8}"

# Static-analysis gate: new findings (anything not in lint-baseline.json)
# fail the smoke run before any benchmark time is spent.  --jobs exercises
# the parallel front-end (output is asserted identical to serial in
# tests/lint/test_flow_rules.py); the --select pass pins the five
# concurrency flow rules explicitly so a registry regression that dropped
# one would fail loudly here rather than silently passing the full gate.
PYTHONPATH=src python -m repro lint src/repro --jobs 4
PYTHONPATH=src python -m repro lint src/repro \
    --select LEASE-BALANCE,LOCK-DISCIPLINE,LOCK-ORDER,FORK-SAFETY,ASYNC-BLOCKING

rm -f benchmarks/results/BENCH_P1.json benchmarks/results/BENCH_P2.json \
      benchmarks/results/BENCH_P5.json benchmarks/results/BENCH_P6.json \
      benchmarks/results/BENCH_P7.json benchmarks/results/BENCH_P8.json \
      benchmarks/results/BENCH_P10.json

PYTHONPATH=src python benchmarks/bench_p1_hotpaths.py
PYTHONPATH=src python benchmarks/bench_p2_serving.py
PYTHONPATH=src python benchmarks/bench_p5_pipeline.py
PYTHONPATH=src python benchmarks/bench_p6_ddp.py
PYTHONPATH=src python benchmarks/bench_p7_net.py
PYTHONPATH=src python benchmarks/bench_p8_fleet_obs.py
PYTHONPATH=src python benchmarks/bench_p10_quant.py

for result in BENCH_P1.json BENCH_P2.json BENCH_P5.json BENCH_P6.json BENCH_P7.json BENCH_P8.json BENCH_P10.json; do
    if [[ ! -f "benchmarks/results/$result" ]]; then
        echo "FAIL: benchmarks/results/$result was not produced" >&2
        exit 1
    fi
done

# Observability smoke: a telemetry-instrumented training run must produce a
# JSON-lines event log that `python -m repro obs` renders.
OBS_EVENTS="$(mktemp -t repro_obs_smoke.XXXXXX.jsonl)"
OBS_RENDER="$(mktemp -t repro_obs_smoke.XXXXXX.txt)"
trap 'rm -f "$OBS_EVENTS" "$OBS_RENDER"' EXIT
PYTHONPATH=src python -m repro train --preset taobao \
    --scale "$REPRO_PERF_SCALE" --dim 16 --epochs 1 \
    --events-out "$OBS_EVENTS" >/dev/null
PYTHONPATH=src python -m repro obs "$OBS_EVENTS" >"$OBS_RENDER"
grep -q "train.fit" "$OBS_RENDER" || {
    echo "FAIL: obs render missing train.fit span" >&2
    exit 1
}

# Network serving smoke, end to end through the CLI: export an artifact,
# start `repro serve --listen` with replicas and fleet telemetry, push 200
# closed-loop requests through a real socket, then SIGTERM and require a
# clean (exit 0) drain with request-correlated spans in the event spools.
# REPRO_LOCK_WATCH=1 runs the whole fleet under the runtime lock-order
# watchdog — any cycle-closing lock acquisition in the serve tier raises
# LockOrderViolation and fails the smoke instead of deadlocking it.
export REPRO_LOCK_WATCH=1
SERVE_ARTIFACT="$(mktemp -t repro_serve_smoke.XXXXXX.npz)"
NET_EVENTS="$(mktemp -t repro_net_smoke.XXXXXX.jsonl)"
NET_RENDER="$(mktemp -t repro_net_smoke.XXXXXX.txt)"
trap 'rm -rf "$OBS_EVENTS" "$OBS_RENDER" "$SERVE_ARTIFACT" \
             "$NET_EVENTS" "$NET_EVENTS.d" "$NET_RENDER"' EXIT
PYTHONPATH=src python -m repro export --preset taobao \
    --scale "$REPRO_PERF_SCALE" --dim 16 --epochs 1 --seed 1 \
    "$SERVE_ARTIFACT" >/dev/null
PYTHONPATH=src python - "$SERVE_ARTIFACT" "$REPRO_PERF_SCALE" \
    "$NET_EVENTS" <<'PY'
import json
import signal
import subprocess
import sys

artifact, scale, events = sys.argv[1], float(sys.argv[2]), sys.argv[3]
proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", artifact,
     "--listen", "127.0.0.1:0", "--replicas", "2", "--index", "hnsw",
     "--events-out", events],
    stdout=subprocess.PIPE, text=True)
try:
    banner = json.loads(proc.stdout.readline())
    assert banner.get("ready"), f"no ready banner: {banner}"
    from repro.data import DATASET_PRESETS, generate, k_core_filter
    from repro.serve import run_load
    dataset = k_core_filter(generate(DATASET_PRESETS["taobao"](scale), seed=1))
    report = run_load(banner["host"], banner["port"], dataset.users,
                      connections=4, target_qps=0.0, total_requests=200,
                      warmup=20, k=10, seed=1)
    assert report.sent == 200, report.to_dict()
    assert report.ok == 200, report.to_dict()
finally:
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=60)
assert code == 0, f"serve exited {code} on SIGTERM"

# Obs over the network: the fleet merge must recover front-end and replica
# spools with request-correlated spans joined into one trace.
from repro.obs import collect_fleet
view = collect_fleet(events)
roles = {p["role"] for p in view.processes}
assert "main" in roles and any(r.startswith("replica") for r in roles), roles
spans = {s["span_id"]: s for s in view.spans}
replica_spans = [s for s in view.spans if s["name"] == "replica.request"]
assert replica_spans, "no replica.request spans in the fleet view"
for child in replica_spans:
    parent = spans[child["parent_id"]]
    assert parent["name"] == "net.request", parent
    assert parent["request_id"] == child["request_id"]
print(f"serve smoke OK ({report.ok} requests, "
      f"p99 {report.percentile(99.0):.1f}ms, "
      f"{len(view.processes)} fleet processes, "
      f"{len(replica_spans)} correlated replica spans)")
PY
PYTHONPATH=src python -m repro obs "$NET_EVENTS" >"$NET_RENDER"
grep -q "net.request" "$NET_RENDER" || {
    echo "FAIL: obs render missing net.request span" >&2
    exit 1
}
grep -q "replica.request" "$NET_RENDER" || {
    echo "FAIL: obs render missing replica.request span" >&2
    exit 1
}

echo "perf smoke OK"
