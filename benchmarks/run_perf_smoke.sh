#!/usr/bin/env bash
# Smoke-run the P1 hot-path benchmark at tiny scale.
#
# Verifies the benchmark machinery end to end — both code paths execute and
# BENCH_P1.json is produced — without asserting the 2x speedup, which is only
# meaningful at the default scale (tiny corpora are dominated by fixed
# overheads).  Intended for CI; finishes in well under a minute.
set -euo pipefail

cd "$(dirname "$0")/.."

export REPRO_PERF_SCALE="${REPRO_PERF_SCALE:-0.15}"
export REPRO_PERF_STEPS="${REPRO_PERF_STEPS:-2}"
export REPRO_PERF_MIN_SPEEDUP="${REPRO_PERF_MIN_SPEEDUP:-0}"

rm -f benchmarks/results/BENCH_P1.json

PYTHONPATH=src python benchmarks/bench_p1_hotpaths.py

if [[ ! -f benchmarks/results/BENCH_P1.json ]]; then
    echo "FAIL: benchmarks/results/BENCH_P1.json was not produced" >&2
    exit 1
fi
echo "perf smoke OK"
