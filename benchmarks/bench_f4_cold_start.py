"""F4 — cold-start analysis by target-behavior history length.

Reproduction target: MISSL beats the single-behavior SASRec on every group,
and its *relative* advantage is largest on the sparsest-history users — the
cold-start story of the paper (auxiliary behaviors compensate for missing
target history).
"""

from common import BENCH_EPOCHS, BENCH_SCALE, run_and_report


def test_f4_cold_start(benchmark):
    result = run_and_report(benchmark, "F4", scale=BENCH_SCALE, epochs=BENCH_EPOCHS)

    groups = sorted({row[1] for row in result.rows})
    sparse_group = [g for g in groups if g.startswith("<=")][0]

    def ndcg(model, group):
        report = result.raw.get((model, group))
        return report["NDCG@10"] if report else None

    missl_sparse = ndcg("MISSL", sparse_group)
    sasrec_sparse = ndcg("SASRec", sparse_group)
    if missl_sparse is not None and sasrec_sparse is not None:
        # On the sparsest users MISSL clearly beats the single-behavior model.
        assert missl_sparse > sasrec_sparse

    # Averaged over all groups, MISSL beats SASRec (individual groups are
    # small — tens of users — so per-group comparisons are noisy).
    missl_all = [ndcg("MISSL", g) for g in groups if ndcg("MISSL", g) is not None]
    sasrec_all = [ndcg("SASRec", g) for g in groups if ndcg("SASRec", g) is not None]
    assert sum(missl_all) / len(missl_all) > sum(sasrec_all) / len(sasrec_all)
